"""Perlmutter CPU and GPU partition models (paper Fig. 2a / 2d, Table I).

CPU partition: two AMD EPYC 7763 (Milan) sockets joined by Infinity Fabric;
the paper's Fig. 3a shows achieved on-node bandwidth close to the IF peak of
32 GB/s/direction.  Runtime is Cray MPI, with both two-sided and one-sided
(RMA) profiles.

GPU partition: four A100s, fully connected over NVLink3.  The pairwise peak
is 100 GB/s/direction delivered over a *group* of four NVLink ports — a
single message streams over one port (~25 GB/s); four concurrent messages
reach the aggregate.  This port-group structure (``channels=4``) plus the
device copy-engine injection limit reproduces the paper's Fig. 10 claim that
splitting a >131 KB message into four yields up to 2.9x.

Calibration targets (paper text; validated in
``tests/machines/test_calibration.py``):

* two-sided small-message latency ~3.3 us; one-sided 4-op sequence ~5 us;
* per-message marginal cost at high msg/sync ~0.3-0.5 us;
* CPU one-sided CAS ~2 us; GPU CAS 0.8 us;
* NVSHMEM put-with-signal n=1 latency ~4 us, large-n marginal ~0.5 us.
"""

from __future__ import annotations

from repro.machines.base import CommCosts, GpuSpec, MachineModel
from repro.net.loggp import LinkParams
from repro.transport import ONE_SIDED, SHMEM, TWO_SIDED
from repro.net.topology import TopologySpec
from repro.util.units import GBps, us

__all__ = ["perlmutter_cpu", "perlmutter_gpu"]

# Cray MPI software-cost profile, shared by the Perlmutter CPU and Frontier
# CPU models (both run CrayMPI per Table III).
CRAYMPI_TWO_SIDED = CommCosts(
    isend=us(0.40),
    irecv=us(0.10),
    recv_match=us(0.20),
    sync_enter=us(2.00),
    wait_per_req=us(0.05),
    eager_threshold=16 * 1024.0,
)

CRAYMPI_ONE_SIDED = CommCosts(
    put=us(0.35),
    get=us(0.35),
    flush=us(0.40),
    fence=us(0.50),
    fetch_op=us(0.25),
    atomic_apply=us(0.20),
    poll_slot=us(0.05),
    sync_enter=us(0.30),
)


def perlmutter_cpu() -> MachineModel:
    """Perlmutter CPU node: 2x Milan, Infinity Fabric CPU-CPU."""
    topo = TopologySpec(
        name="perlmutter-cpu",
        loopback=LinkParams(
            latency=us(0.20), bandwidth=GBps(100), gap=us(0.02), name="shm"
        ),
    )
    topo.add_link(
        "cpu0",
        "cpu1",
        LinkParams(
            latency=us(0.70), bandwidth=GBps(32), gap=us(0.02), name="IF CPU-CPU"
        ),
    )
    # NIC hangs off cpu0 (Fig. 2a); on-node experiments never route through
    # it, but it is part of the node inventory.
    topo.add_link(
        "cpu0",
        "nic0",
        LinkParams(latency=us(0.80), bandwidth=GBps(25), gap=us(0.20), name="PCIe4.0"),
    )
    return MachineModel(
        name="perlmutter-cpu",
        description="2x AMD EPYC 7763 (Milan), Infinity Fabric, CrayMPI",
        topology=topo,
        compute_endpoints=["cpu0", "cpu1"],
        runtimes={
            TWO_SIDED: CRAYMPI_TWO_SIDED,
            ONE_SIDED: CRAYMPI_ONE_SIDED,
        },
        cores_per_endpoint=64,
        mem_bandwidth_per_endpoint=GBps(204.8),
        nominal_link_specs={
            "IF CPU-CPU": "4x32 GB/s/direction",
            "PCIe4.0": "25 GB/s/direction",
        },
    )


# NVSHMEM device-initiated profile on A100/NVLink3.
NVSHMEM_PERLMUTTER = CommCosts(
    put_signal=us(0.45),
    wait_wakeup=us(3.40),
    fetch_op=us(0.20),
    atomic_apply=us(0.0),
    # A100: signal words poll from L2; ~0.1 ns per watched slot plus a
    # 0.2 us wake-and-recheck pass.
    poll_slot=us(0.0001),
    wait_poll=us(0.20),
    flush=us(0.10),
)

# Host-initiated (CUDA-aware) two-sided MPI on the GPU partition: every
# synchronization involves a device sync + host MPI + kernel relaunch.
CUDA_AWARE_TWO_SIDED = CommCosts(
    isend=us(0.50),
    irecv=us(0.15),
    recv_match=us(0.25),
    sync_enter=us(12.0),
    wait_per_req=us(0.05),
    eager_threshold=16 * 1024.0,
)


def perlmutter_gpu() -> MachineModel:
    """Perlmutter GPU node: 4x A100 fully connected over NVLink3."""
    topo = TopologySpec(
        name="perlmutter-gpu",
        loopback=LinkParams(
            latency=us(0.10), bandwidth=GBps(1000), gap=us(0.02), name="hbm"
        ),
    )
    gpus = [f"gpu{i}" for i in range(4)]
    nvlink3 = LinkParams(
        latency=us(0.30),
        bandwidth=GBps(100),
        gap=us(0.10),
        channels=4,
        name="NVLINK3",
    )
    for i in range(4):
        for j in range(i + 1, 4):
            topo.add_link(gpus[i], gpus[j], nvlink3)
    pcie = LinkParams(latency=us(0.50), bandwidth=GBps(25), gap=us(0.25), name="PCIe4")
    for g in gpus:
        topo.add_link("cpu0", g, pcie)
    # Each GPU pairs with a Slingshot NIC over its PCIe switch (Table I:
    # CPU-NIC PCIe4.0); on-node experiments never route through them.
    for i, g in enumerate(gpus):
        topo.add_link(
            g,
            f"nic{i}",
            LinkParams(
                latency=us(0.60), bandwidth=GBps(25), gap=us(0.25), name="PCIe4"
            ),
        )
    # Device copy-engine injection: the aggregate NVLink fan-out of an A100
    # is 300 GB/s nominal; ~200 GB/s effective funnels concurrent sends.
    for g in gpus:
        topo.set_injection(g, LinkParams(latency=0.0, bandwidth=GBps(200), name="inj"))
    return MachineModel(
        name="perlmutter-gpu",
        description="4x NVIDIA A100, NVLink3 fully connected, NVSHMEM v2.8",
        topology=topo,
        compute_endpoints=gpus,
        runtimes={
            SHMEM: NVSHMEM_PERLMUTTER,
            TWO_SIDED: CUDA_AWARE_TWO_SIDED,
        },
        cores_per_endpoint=1,
        mem_bandwidth_per_endpoint=GBps(204.8),
        gpu=GpuSpec(
            mem_bandwidth=GBps(1555),
            thread_blocks=80,
            flop_rate=9.7e12,
            kernel_launch=us(5.0),
        ),
        nominal_link_specs={
            "NVLINK3": "300 GB/s/dir aggregate, 100 GB/s/dir per pair",
            "PCIe4": "25 GB/s/direction",
        },
    )
