"""Multi-node clusters: nodes joined through their NICs by a switched fabric.

The paper's Fig. 3 evaluates "two-sided and one-sided MPI on CPUs over
InfiniBand and Slingshot-11"; the on-node models in this package stop at the
NIC.  :func:`make_cluster` replicates a node model N times, prefixes its
endpoints (``n0.cpu0``, ``n1.gpu2``, ...), and connects every node's NIC(s)
to a central switch with the interconnect's LogGP parameters.

Interconnect presets follow public microbenchmark figures:

* **Slingshot-11** (Perlmutter, Frontier): ~25 GB/s/direction per NIC,
  ~1.8 us switch-traversal latency;
* **InfiniBand EDR** (Summit): ~12.5 GB/s/direction, ~1.3 us.
"""

from __future__ import annotations

import dataclasses

from repro.machines.base import MachineModel
from repro.net.loggp import LinkParams
from repro.net.topology import FabricBlueprint, TopologySpec
from repro.util.units import GBps, us

__all__ = ["make_cluster", "FABRICS", "SLINGSHOT11", "INFINIBAND_EDR"]

SLINGSHOT11 = LinkParams(
    latency=us(0.9), bandwidth=GBps(25), gap=us(0.05), name="Slingshot-11"
)
# One switch traversal = two link hops (node->switch->node) = 1.8 us total.

INFINIBAND_EDR = LinkParams(
    latency=us(0.65), bandwidth=GBps(12.5), gap=us(0.08), name="IB EDR"
)

# Named fabric presets, so sweep points can reference an interconnect by a
# plain JSON-able string (like machines are referenced by registry name).
FABRICS: dict[str, LinkParams] = {
    "slingshot11": SLINGSHOT11,
    "infiniband-edr": INFINIBAND_EDR,
}


def _is_nic(endpoint: str) -> bool:
    return endpoint.startswith("nic") or endpoint.startswith("nic-")


def make_cluster(
    node: MachineModel,
    nnodes: int,
    interconnect: LinkParams = SLINGSHOT11,
    *,
    name: str | None = None,
    fabric: FabricBlueprint | None = None,
) -> MachineModel:
    """Build an ``nnodes``-node cluster from one node model.

    Every endpoint of the node topology is replicated with an ``n{i}.``
    prefix.  With the default star fabric, each node NIC connects to a
    shared ``switch`` endpoint with the interconnect parameters.  With a
    :class:`~repro.net.topology.FabricBlueprint` (from
    :func:`~repro.net.topology.dragonfly` / ``fat_tree`` / ``torus``), the
    blueprint's router graph is embedded instead and node ``i``'s NICs cable
    to ``fabric.attach_points[i]`` — multi-hop routes, path diversity, and
    adaptive routing then apply between nodes.  Rank placement, runtimes,
    and compute rates carry over unchanged, so all workloads and experiments
    run on clusters exactly as they do on single nodes.
    """
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    if fabric is not None and nnodes > fabric.max_nodes:
        raise ValueError(
            f"{nnodes} nodes exceed the {fabric.max_nodes} node ports of "
            f"{fabric.describe()}"
        )
    nics = [ep for ep in node.topology.endpoints if _is_nic(ep)]
    if not nics:
        raise ValueError(
            f"node model {node.name!r} has no NIC endpoints to attach to a fabric"
        )
    suffix = f"-x{nnodes}" if fabric is None else f"-x{nnodes}@{fabric.topology.name}"
    topo = TopologySpec(
        name=f"{node.name}{suffix}",
        loopback=node.topology.loopback,
    )
    if fabric is not None:
        for key, params in fabric.topology.links.items():
            a, b = sorted(key)
            topo.add_link(a, b, params)
    for i in range(nnodes):
        for key, params in node.topology.links.items():
            a, b = sorted(key)
            topo.add_link(f"n{i}.{a}", f"n{i}.{b}", params)
        for ep, inj in node.topology.injection.items():
            topo.set_injection(f"n{i}.{ep}", inj)
        attach = "switch" if fabric is None else fabric.attach_points[i]
        for nic in nics:
            topo.add_link(f"n{i}.{nic}", attach, interconnect)
    compute_endpoints = [
        f"n{i}.{ep}" for i in range(nnodes) for ep in node.compute_endpoints
    ]
    fabric_desc = interconnect.name if fabric is None else fabric.describe()
    return MachineModel(
        name=name or f"{node.name}{suffix}",
        description=(
            f"{nnodes} x [{node.description}] over {fabric_desc} "
            f"({interconnect.bandwidth / 1e9:.1f} GB/s/dir per NIC)"
        ),
        topology=topo,
        compute_endpoints=compute_endpoints,
        runtimes=dict(node.runtimes),
        cores_per_endpoint=node.cores_per_endpoint,
        mem_bandwidth_per_endpoint=node.mem_bandwidth_per_endpoint,
        mem_bandwidth_per_core=node.mem_bandwidth_per_core,
        flop_rate_per_core=node.flop_rate_per_core,
        gpu=dataclasses.replace(node.gpu) if node.gpu else None,
        nominal_link_specs={
            **node.nominal_link_specs,
            interconnect.name: (
                f"{interconnect.bandwidth / 1e9:.1f} GB/s/direction, "
                f"{2 * interconnect.latency * 1e6:.1f} us node-to-node"
            ),
        },
    )
