"""Frontier CPU partition model (paper Fig. 2b, Table I) and a Frontier
GPU *projection* for the paper's stated future work.

A Frontier node has one optimized-3rd-gen-EPYC (7A53) CPU and four MI250X
GPUs; the NICs hang off the GPUs, so the paper's on-node CPU communication
data path is Infinity Fabric CPU-GPU (36 GB/s) -> PCIe4 ESM (50 GB/s), with
the 36 GB/s IF stage as the ultimate bound (Fig. 1).

Substitution note (DESIGN.md §2): for the CPU-partition experiments we model
the socket as two NUMA halves joined by the 36 GB/s IF stage, which exposes
exactly the bound the paper measures, and keep the GPU/NIC endpoints in the
inventory for the topology description.  The paper runs no Frontier GPU
experiments (ROC_SHMEM lacked ``wait_until_any``), and neither do we.
"""

from __future__ import annotations

from repro.machines.base import CommCosts, GpuSpec, MachineModel
from repro.machines.perlmutter import CRAYMPI_ONE_SIDED, CRAYMPI_TWO_SIDED
from repro.transport import ONE_SIDED, SHMEM, TWO_SIDED
from repro.net.loggp import LinkParams
from repro.net.topology import TopologySpec
from repro.util.units import GBps, us

__all__ = ["frontier_cpu", "frontier_gpu_projection"]


def frontier_cpu() -> MachineModel:
    """Frontier CPU node: one Milan-class socket, IF on-node fabric at 36 GB/s."""
    topo = TopologySpec(
        name="frontier-cpu",
        loopback=LinkParams(
            latency=us(0.20), bandwidth=GBps(100), gap=us(0.02), name="shm"
        ),
    )
    topo.add_link(
        "numa0",
        "numa1",
        LinkParams(
            latency=us(0.75), bandwidth=GBps(36), gap=us(0.02), name="IF CPU-GPU"
        ),
    )
    # Inventory endpoints: the four MI250X GPUs and their NICs (PCIe4 ESM).
    for i in range(4):
        topo.add_link(
            "numa1" if i >= 2 else "numa0",
            f"gpu{i}",
            LinkParams(
                latency=us(0.60), bandwidth=GBps(36), gap=us(0.20), name="IF CPU-GPU"
            ),
        )
        topo.add_link(
            f"gpu{i}",
            f"nic{i}",
            LinkParams(
                latency=us(0.50), bandwidth=GBps(50), gap=us(0.20), name="PCIe4 ESM"
            ),
        )
    return MachineModel(
        name="frontier-cpu",
        description="1x AMD EPYC 7A53, Infinity Fabric on-node, CrayMPI",
        topology=topo,
        compute_endpoints=["numa0", "numa1"],
        runtimes={
            TWO_SIDED: CRAYMPI_TWO_SIDED,
            ONE_SIDED: CRAYMPI_ONE_SIDED,
        },
        cores_per_endpoint=32,
        mem_bandwidth_per_endpoint=GBps(102.4),
        nominal_link_specs={
            "IF CPU-GPU": "36 GB/s/direction",
            "PCIe4 ESM": "50 GB/s/direction",
        },
    )


# ROC_SHMEM projection: the paper skipped Frontier GPUs because ROC_SHMEM
# lacked ``wait_until_any``; this profile models the library with the wait
# *emulated in software* (a device-side polling loop over the signal
# array), which is exactly the Listing-1 cost structure — so the projected
# SpTRSV behaviour can be studied before the primitive exists.
ROCSHMEM_PROJECTED = CommCosts(
    put_signal=us(0.60),
    wait_wakeup=us(5.00),
    fetch_op=us(0.35),
    atomic_apply=us(0.10),
    # Emulated wait_until_any: every wake re-scans the signal slots from
    # device memory — an order of magnitude above the A100's native path.
    poll_slot=us(0.002),
    wait_poll=us(1.50),
    flush=us(0.15),
)


def frontier_gpu_projection() -> MachineModel:
    """Projected Frontier GPU node: 4x MI250X over Infinity Fabric.

    Marked a *projection* (DESIGN.md): the paper ran no Frontier GPU
    experiments; link rates follow the public MI250X specifications and
    the software profile models ROC_SHMEM with software-emulated signal
    waiting.  Used by the future-work experiment
    (:func:`repro.experiments.future.run_future_frontier`).
    """
    topo = TopologySpec(
        name="frontier-gpu",
        loopback=LinkParams(
            latency=us(0.12), bandwidth=GBps(1200), gap=us(0.02), name="hbm"
        ),
    )
    gpus = [f"gpu{i}" for i in range(4)]
    # MI250X GPUs are pairwise connected by Infinity Fabric links:
    # 100 GB/s/dir between in-group pairs, 50 GB/s/dir otherwise; we model
    # the all-to-all mesh at 50 GB/s/dir with 2 sub-channels.
    if_gg = LinkParams(
        latency=us(0.40), bandwidth=GBps(50), gap=us(0.15), channels=2,
        name="IF GPU-GPU",
    )
    for i in range(4):
        for j in range(i + 1, 4):
            topo.add_link(gpus[i], gpus[j], if_gg)
    for g in gpus:
        topo.add_link(
            "cpu0",
            g,
            LinkParams(latency=us(0.55), bandwidth=GBps(36), gap=us(0.15),
                       name="IF CPU-GPU"),
        )
        topo.add_link(
            g,
            f"nic-{g}",
            LinkParams(latency=us(0.50), bandwidth=GBps(50), gap=us(0.20),
                       name="PCIe4 ESM"),
        )
        topo.set_injection(
            g, LinkParams(latency=0.0, bandwidth=GBps(150), name="inj")
        )
    return MachineModel(
        name="frontier-gpu",
        description="PROJECTION: 4x AMD MI250X, Infinity Fabric, ROC_SHMEM "
        "with software-emulated signal waiting",
        topology=topo,
        compute_endpoints=gpus,
        runtimes={SHMEM: ROCSHMEM_PROJECTED},
        cores_per_endpoint=1,
        mem_bandwidth_per_endpoint=GBps(204.8),
        gpu=GpuSpec(
            mem_bandwidth=GBps(1600),
            thread_blocks=80,
            flop_rate=24e12,
            kernel_launch=us(6.0),
        ),
        nominal_link_specs={
            "IF GPU-GPU": "50-100 GB/s/direction",
            "PCIe4 ESM": "50 GB/s/direction",
        },
    )
