"""Machine model: topology + runtime software costs + compute rates.

A :class:`MachineModel` bundles everything the communication layers and the
workloads need to know about one of the paper's platforms:

* the node fabric (:class:`~repro.net.topology.TopologySpec`, Fig. 2);
* per-runtime software op costs (:class:`CommCosts`) — the LogGP ``o``
  component, which the paper attributes to the MPI/NVSHMEM stack and which
  differentiates two-sided (2 ops/message) from one-sided (4 ops/message);
* rank placement (which endpoint hosts which rank);
* compute-rate parameters for modelled (non-executed) local work.

The concrete platforms live in sibling modules and are calibrated against
the numbers quoted in the paper (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.loggp import LogGPParams
from repro.net.topology import TopologySpec
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CommCosts", "GpuSpec", "MachineModel", "Placement"]


@dataclass(frozen=True)
class CommCosts:
    """Software overheads (seconds) charged per operation by a runtime.

    Two-sided ops:
        isend: sender-side cost of posting one non-blocking send (serial —
            the LogGP ``o`` that cannot be overlapped by more messages).
        irecv: cost of posting one non-blocking receive.
        recv_match: receiver-side per-message matching/copy cost, paid when
            a message is consumed.
        sync_enter: one-time cost per blocking synchronisation call
            (``Waitall`` / blocking ``Recv`` wake-up and progress entry).
            Amortised over all messages completed by that call.
        wait_per_req: per-request completion bookkeeping inside a wait.

    One-sided ops:
        put / get: cost of posting one non-blocking RMA op.
        flush: CPU cost of ``Win_flush`` (the remote-completion acknowledge
            round-trip is paid in wire time on top of this).
        fence: per-call cost of ``Win_fence`` in addition to the barrier.
        fetch_op: initiator cost of an atomic (CAS / fetch-and-op).
        atomic_apply: target-side serialisation cost per atomic applied.

    GPU-initiated (NVSHMEM-style) ops:
        put_signal: device cost of issuing one ``put_signal_nbi``.
        wait_wakeup: one-time cost for a ``wait_until`` to notice and wake
            after the awaited signal arrives (polling granularity +
            scheduling).
        poll_slot: cost per signal-slot scan in a software polling loop
            (the paper's Listing 1 receiver acknowledgment) — this is the
            "extra work to maintain data arrival" that stops one-sided
            SpTRSV from scaling.

    Shared:
        copy_per_byte: extra per-byte software copy cost (seconds/byte) the
            runtime adds on the receive path.  Nonzero for Spectrum MPI on
            Summit, which is why its achieved X-Bus bandwidth saturates near
            25 GB/s although the bus peaks at 64 (Fig. 3c).
        eager_threshold: messages above this size use the rendezvous
            protocol, paying an extra request/ack round trip.
    """

    isend: float = 0.0
    irecv: float = 0.0
    recv_match: float = 0.0
    sync_enter: float = 0.0
    wait_per_req: float = 0.0
    put: float = 0.0
    get: float = 0.0
    flush: float = 0.0
    fence: float = 0.0
    fetch_op: float = 0.0
    atomic_apply: float = 0.0
    put_signal: float = 0.0
    wait_wakeup: float = 0.0
    poll_slot: float = 0.0
    # Fixed cost of one wake-and-recheck pass inside a device-side
    # ``wait_until``; charged per signal arrival while waiting (plus
    # ``poll_slot`` per watched slot).  On V100-class hardware this signal
    # polling is markedly slower than on A100 — one of the reasons SpTRSV
    # stops scaling on Summit GPUs (Fig. 8).
    wait_poll: float = 0.0
    copy_per_byte: float = 0.0
    eager_threshold: float = 16 * 1024.0
    # Rendezvous protocol adds one request/ack round trip for messages over
    # the eager threshold.
    rendezvous_rtt_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "isend",
            "irecv",
            "recv_match",
            "sync_enter",
            "wait_per_req",
            "put",
            "get",
            "flush",
            "fence",
            "fetch_op",
            "atomic_apply",
            "put_signal",
            "wait_wakeup",
            "poll_slot",
            "wait_poll",
            "copy_per_byte",
            "eager_threshold",
            "rendezvous_rtt_factor",
        ):
            check_non_negative(name, getattr(self, name))


@dataclass(frozen=True)
class GpuSpec:
    """GPU execution-model parameters.

    Attributes:
        mem_bandwidth: device HBM bandwidth (bytes/s) for modelled compute.
        thread_blocks: simultaneously schedulable blocks — the paper's
            "eighty thread blocks ... 320x parallelism on one node".
        flop_rate: peak FP64 rate (flops/s) for compute-bound kernels.
        kernel_launch: host->device kernel launch latency (seconds); paid
            once per launched kernel in host-driven execution, zero for
            persistent-kernel (GPU-initiated) execution.
    """

    mem_bandwidth: float
    thread_blocks: int
    flop_rate: float
    kernel_launch: float = 5e-6

    def __post_init__(self) -> None:
        check_positive("mem_bandwidth", self.mem_bandwidth)
        check_positive("flop_rate", self.flop_rate)
        check_non_negative("kernel_launch", self.kernel_launch)
        if self.thread_blocks < 1:
            raise ValueError(f"thread_blocks must be >= 1, got {self.thread_blocks}")


Placement = str  # "spread" (round-robin over endpoints) or "block"


@dataclass
class MachineModel:
    """One evaluation platform (a row of the paper's Table I)."""

    name: str
    description: str
    topology: TopologySpec
    compute_endpoints: list[str]
    runtimes: dict[str, CommCosts]
    cores_per_endpoint: int
    mem_bandwidth_per_endpoint: float
    # A single core cannot saturate the socket's memory system; per-rank
    # streaming bandwidth is min(core bound, fair share of the socket).
    mem_bandwidth_per_core: float = 25e9
    flop_rate_per_core: float = 25e9
    gpu: GpuSpec | None = None
    nominal_link_specs: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.compute_endpoints:
            raise ValueError(f"machine {self.name!r} has no compute endpoints")
        for ep in self.compute_endpoints:
            if not self.topology.has_endpoint(ep):
                raise ValueError(
                    f"compute endpoint {ep!r} missing from topology of {self.name!r}"
                )
        if not self.runtimes:
            raise ValueError(f"machine {self.name!r} defines no runtimes")
        check_positive("mem_bandwidth_per_endpoint", self.mem_bandwidth_per_endpoint)
        if self.cores_per_endpoint < 1:
            raise ValueError(
                f"cores_per_endpoint must be >= 1, got {self.cores_per_endpoint}"
            )

    # -- capacity ------------------------------------------------------------

    @property
    def is_gpu_machine(self) -> bool:
        return self.gpu is not None

    @property
    def max_ranks(self) -> int:
        """Hardware rank capacity: cores (CPU) or devices (GPU)."""
        if self.is_gpu_machine:
            return len(self.compute_endpoints)
        return len(self.compute_endpoints) * self.cores_per_endpoint

    def runtime(self, kind: str) -> CommCosts:
        try:
            return self.runtimes[kind]
        except KeyError:
            pass
        derived = self._derived_runtime(kind)
        if derived is not None:
            return derived
        raise KeyError(
            f"machine {self.name!r} has no runtime {kind!r}; "
            f"available: {sorted(self.runtimes)}"
        )

    def _derived_runtime(self, kind: str) -> CommCosts | None:
        """Profiles computed from the calibrated ones on demand.

        ``stream_triggered`` needs no per-machine calibration — its costs
        derive from the cheapest demonstrated host-driven issue path (see
        :func:`repro.comm.stream.derive_stream_costs`).  Derived profiles
        are cached privately and never added to ``self.runtimes``, so
        Table I, :meth:`describe` and the machine fingerprint only ever
        see calibrated entries.
        """
        cache: dict[str, CommCosts] | None = getattr(
            self, "_derived_cache", None
        )
        if cache is not None and kind in cache:
            return cache[kind]
        from repro.transport.registry import STREAM_TRIGGERED

        if kind != STREAM_TRIGGERED:
            return None
        from repro.comm.stream import derive_stream_costs

        costs = derive_stream_costs(self)
        if cache is None:
            cache = {}
            self._derived_cache = cache
        cache[kind] = costs
        return costs

    # -- rank placement --------------------------------------------------------

    def endpoint_of_rank(
        self, rank: int, nranks: int, placement: Placement = "block"
    ) -> str:
        """Map an MPI rank to its hosting endpoint.

        ``"block"`` fills endpoints in contiguous chunks (ranks 0..P/2-1 on
        socket 0); ``"spread"`` round-robins (rank i on endpoint i % E) —
        the flood benchmarks use spread so that ranks 0 and 1 land on
        different endpoints and actually exercise the fabric.
        """
        if not 0 <= rank < nranks:
            raise ValueError(f"rank {rank} out of range for nranks={nranks}")
        if nranks > self.max_ranks:
            raise ValueError(
                f"{nranks} ranks exceed capacity {self.max_ranks} of {self.name!r}"
            )
        eps = self.compute_endpoints
        if placement == "spread":
            return eps[rank % len(eps)]
        if placement == "block":
            return eps[rank * len(eps) // nranks]
        raise ValueError(f"unknown placement {placement!r}")

    def ranks_per_endpoint(
        self, nranks: int, placement: Placement = "block"
    ) -> dict[str, int]:
        """How many ranks share each endpoint under the given placement."""
        counts: dict[str, int] = {ep: 0 for ep in self.compute_endpoints}
        for r in range(nranks):
            counts[self.endpoint_of_rank(r, nranks, placement)] += 1
        return counts

    # -- compute model --------------------------------------------------------

    def compute_time(
        self,
        nbytes: float,
        flops: float = 0.0,
        *,
        sharing: int = 1,
        on_gpu: bool = False,
    ) -> float:
        """Modelled time for local work touching ``nbytes`` of memory and
        executing ``flops`` floating-point operations.

        ``sharing`` is how many ranks concurrently share the endpoint's
        memory bandwidth (CPU ranks on one socket).  GPU ranks own their
        device.  The model is roofline-style: ``max(bytes/bw, flops/rate)``.
        """
        check_non_negative("nbytes", nbytes)
        check_non_negative("flops", flops)
        if sharing < 1:
            raise ValueError(f"sharing must be >= 1, got {sharing}")
        if on_gpu:
            if self.gpu is None:
                raise ValueError(f"machine {self.name!r} has no GPU spec")
            bw = self.gpu.mem_bandwidth
            rate = self.gpu.flop_rate
        else:
            bw = min(
                self.mem_bandwidth_per_core,
                self.mem_bandwidth_per_endpoint / sharing,
            )
            rate = self.flop_rate_per_core
        return max(nbytes / bw, flops / rate if rate > 0 else 0.0)

    # -- analytic-model bridge --------------------------------------------------

    def loggp(
        self,
        runtime: str,
        src: str | int,
        dst: str | int,
        *,
        nranks: int | None = None,
        placement: Placement = "spread",
        ops_per_message: int = 1,
        sided: str = "two",
    ) -> LogGPParams:
        """Combined LogGP parameters for a (runtime, path) pair.

        The analytic Message Roofline model (``repro.roofline``) wants one
        ``(L, o, g, G)`` tuple; this assembles it from the topology route and
        the runtime cost table.  ``src``/``dst`` may be endpoint names or
        rank ids (resolved with ``nranks``/``placement``).
        """
        costs = self.runtime(runtime)
        if isinstance(src, int) or isinstance(dst, int):
            if nranks is None:
                raise ValueError("nranks is required when src/dst are rank ids")
            src_ep = (
                self.endpoint_of_rank(src, nranks, placement)
                if isinstance(src, int)
                else src
            )
            dst_ep = (
                self.endpoint_of_rank(dst, nranks, placement)
                if isinstance(dst, int)
                else dst
            )
        else:
            src_ep, dst_ep = src, dst
        route = self.topology.route(src_ep, dst_ep)
        if sided == "two":
            o_msg = costs.isend + costs.recv_match
            o_sync = costs.sync_enter
            latency = route.latency
        elif sided == "one":
            # ops_per_message counts the RMA calls *carried by each
            # message*: the paper's SpTRSV message is put, flush,
            # put-signal, flush = 4 ops; a flood/stencil batch amortises
            # the completion sequence over the sync (= 1 op/message, with
            # the flush + put-signal + flush charged once per sync).
            n_puts = (ops_per_message + 1) // 2
            n_flushes = ops_per_message // 2
            o_msg = n_puts * costs.put + n_flushes * costs.flush
            # Each per-message flush is a remote-completion round trip.
            latency = route.latency * (1.0 + 2.0 * n_flushes)
            if ops_per_message == 1:
                # Batched completion: flush + put(signal) + flush per sync.
                o_sync = costs.put + 2 * costs.flush + 4 * route.latency
            else:
                o_sync = 0.0
        elif sided == "shmem":
            o_msg = costs.put_signal
            o_sync = costs.wait_wakeup
            latency = route.latency
        else:
            raise ValueError(f"unknown sidedness {sided!r}")
        return LogGPParams(
            L=latency,
            o=o_msg,
            g=max(route.gap, 0.0),
            G=route.G + costs.copy_per_byte,
            o_sync=o_sync,
        )

    def describe(self) -> str:
        """Multi-line description used by the Table I bench."""
        lines = [f"{self.name}: {self.description}"]
        lines.append(self.topology.describe())
        lines.append(f"  runtimes: {', '.join(sorted(self.runtimes))}")
        lines.append(
            f"  compute endpoints: {len(self.compute_endpoints)} x "
            f"{self.cores_per_endpoint} cores, "
            f"{self.mem_bandwidth_per_endpoint / 1e9:.0f} GB/s memory each"
        )
        if self.gpu is not None:
            lines.append(
                f"  gpu: {self.gpu.mem_bandwidth / 1e9:.0f} GB/s HBM, "
                f"{self.gpu.thread_blocks} thread blocks"
            )
        return "\n".join(lines)
