"""Summit CPU and GPU models (paper Fig. 2c, Table I).

A Summit node is a *dual-island dumbbell*: two POWER9 sockets joined by
X-Bus; each socket anchors an island of three V100s, fully connected within
the island by NVLink2 at 50 GB/s/direction.  Traffic between islands crosses
the X-Bus, which the paper measures at 32 GB/s/direction for GPU messages
(and only ~25 GB/s achieved for Spectrum MPI CPU traffic, despite the 64 GB/s
nominal peak).

Runtime is IBM Spectrum MPI on the CPUs.  The paper's Fig. 3c finds Spectrum
*one-sided* performance consistently below two-sided — modelled here as a
high per-RMA-op software cost.  NVSHMEM v2.8 runs on the GPUs.

Calibration targets (validated in ``tests/machines/test_calibration.py``):

* CPU two-sided small-message latency ~3 us; achieved X-Bus bandwidth ~25 GB/s;
* GPU put-with-signal n=1 latency ~5 us;
* GPU CAS ~1.0 us within an island, ~1.6 us across sockets.
"""

from __future__ import annotations

from repro.machines.base import CommCosts, GpuSpec, MachineModel
from repro.net.loggp import LinkParams
from repro.transport import ONE_SIDED, SHMEM, TWO_SIDED
from repro.net.topology import TopologySpec
from repro.util.units import GBps, us

__all__ = ["summit_cpu", "summit_gpu"]

# Spectrum MPI adds a serialised software copy on the receive path; with the
# copy engine at 25 GB/s it becomes the pipeline bottleneck below the 32 GB/s
# X-Bus — the ~25 GB/s achieved ceiling of Fig. 3c.
_SPECTRUM_COPY = 1.0 / GBps(25)

SPECTRUM_TWO_SIDED = CommCosts(
    isend=us(0.50),
    irecv=us(0.15),
    recv_match=us(0.30),
    sync_enter=us(2.00),
    wait_per_req=us(0.05),
    copy_per_byte=_SPECTRUM_COPY,
    eager_threshold=16 * 1024.0,
)

# Spectrum one-sided: heavyweight RMA ops (the Fig. 3c inversion).
SPECTRUM_ONE_SIDED = CommCosts(
    put=us(1.50),
    get=us(1.50),
    flush=us(1.00),
    fence=us(1.20),
    fetch_op=us(0.80),
    atomic_apply=us(0.30),
    poll_slot=us(0.06),
    sync_enter=us(0.80),
    copy_per_byte=_SPECTRUM_COPY,
)

NVSHMEM_SUMMIT = CommCosts(
    put_signal=us(0.55),
    wait_wakeup=us(4.30),
    fetch_op=us(0.30),
    atomic_apply=us(0.10),
    # V100 + CUDA 11.0: signal polling walks global memory — ~5x the A100
    # per-slot cost, a key contributor to Summit's SpTRSV non-scaling.
    poll_slot=us(0.0005),
    wait_poll=us(2.50),
    flush=us(0.12),
)

CUDA_AWARE_TWO_SIDED_SUMMIT = CommCosts(
    isend=us(0.60),
    irecv=us(0.20),
    recv_match=us(0.30),
    sync_enter=us(14.0),
    wait_per_req=us(0.05),
    eager_threshold=16 * 1024.0,
)


def _summit_topology() -> TopologySpec:
    """The full Summit node fabric: both sockets, all six GPUs."""
    topo = TopologySpec(
        name="summit",
        loopback=LinkParams(
            latency=us(0.25), bandwidth=GBps(80), gap=us(0.02), name="shm"
        ),
    )
    topo.add_link(
        "cpu0",
        "cpu1",
        LinkParams(
            latency=us(0.18),
            bandwidth=GBps(32),
            gap=us(0.05),
            atomic_gap=us(1.0),
            name="X-Bus",
        ),
    )
    # Island 0: gpu0..gpu2 on cpu0; island 1: gpu3..gpu5 on cpu1.  The
    # GPU-CPU hop latency is kept above half the GPU-GPU latency so that
    # in-island traffic routes over the direct NVLink, not through the CPU.
    nvlink2_gg = LinkParams(
        latency=us(0.30), bandwidth=GBps(50), gap=us(0.15), name="NVLINK2"
    )
    nvlink2_gc = LinkParams(
        latency=us(0.22), bandwidth=GBps(50), gap=us(0.15), name="NVLINK2 GPU-CPU"
    )
    for island, cpu in ((0, "cpu0"), (1, "cpu1")):
        members = [f"gpu{island * 3 + k}" for k in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                topo.add_link(members[i], members[j], nvlink2_gg)
            topo.add_link(members[i], cpu, nvlink2_gc)
    for cpu, nic in (("cpu0", "nic0"),):
        topo.add_link(
            cpu,
            nic,
            LinkParams(latency=us(0.80), bandwidth=GBps(16), gap=us(0.25), name="PCIe4.0"),
        )
    for g in (f"gpu{i}" for i in range(6)):
        topo.set_injection(g, LinkParams(latency=0.0, bandwidth=GBps(135), name="inj"))
    return topo


def summit_cpu() -> MachineModel:
    """Summit CPU view: 2x POWER9 over X-Bus, Spectrum MPI, 42 usable cores."""
    return MachineModel(
        name="summit-cpu",
        description="2x IBM POWER9, X-Bus, IBM Spectrum MPI",
        topology=_summit_topology(),
        compute_endpoints=["cpu0", "cpu1"],
        runtimes={
            TWO_SIDED: SPECTRUM_TWO_SIDED,
            ONE_SIDED: SPECTRUM_ONE_SIDED,
        },
        cores_per_endpoint=21,
        mem_bandwidth_per_endpoint=GBps(135),
        nominal_link_specs={
            "X-Bus": "64 GB/s/direction nominal, ~25 GB/s achieved (Spectrum)",
            "PCIe4.0": "16 GB/s/direction",
        },
    )


def summit_gpu() -> MachineModel:
    """Summit GPU view: 6x V100 in the dual-island dumbbell topology."""
    return MachineModel(
        name="summit-gpu",
        description="6x NVIDIA V100, NVLink2 dual-island dumbbell, NVSHMEM v2.8",
        topology=_summit_topology(),
        compute_endpoints=[f"gpu{i}" for i in range(6)],
        runtimes={
            SHMEM: NVSHMEM_SUMMIT,
            TWO_SIDED: CUDA_AWARE_TWO_SIDED_SUMMIT,
        },
        cores_per_endpoint=1,
        mem_bandwidth_per_endpoint=GBps(135),
        gpu=GpuSpec(
            mem_bandwidth=GBps(900),
            thread_blocks=80,
            flop_rate=7.8e12,
            kernel_launch=us(6.0),
        ),
        nominal_link_specs={
            "NVLINK2": "50 GB/s/direction in-island, 32 GB/s/direction across sockets",
        },
    )
