"""Evaluation-platform models: Perlmutter, Frontier, Summit (Table I)."""

from repro.machines.base import CommCosts, GpuSpec, MachineModel
from repro.machines.cluster import FABRICS, INFINIBAND_EDR, SLINGSHOT11, make_cluster
from repro.machines.frontier import frontier_cpu, frontier_gpu_projection
from repro.machines.perlmutter import perlmutter_cpu, perlmutter_gpu
from repro.machines.registry import (
    MACHINES,
    PROJECTIONS,
    get_machine,
    machine_fingerprint,
    machine_names,
    table1_row,
    table1_rows,
)
from repro.machines.summit import summit_cpu, summit_gpu

__all__ = [
    "CommCosts",
    "GpuSpec",
    "MachineModel",
    "frontier_cpu",
    "frontier_gpu_projection",
    "perlmutter_cpu",
    "perlmutter_gpu",
    "summit_cpu",
    "summit_gpu",
    "make_cluster",
    "SLINGSHOT11",
    "INFINIBAND_EDR",
    "FABRICS",
    "MACHINES",
    "PROJECTIONS",
    "get_machine",
    "machine_fingerprint",
    "machine_names",
    "table1_row",
    "table1_rows",
]
