"""Algorithm selector: Hockney (α–β) costs from the machine's LogGP.

For each candidate algorithm the selector evaluates the textbook cost
model with ``α = L + o + o_sync`` (per-round latency, from the runtime's
calibrated LogGP parameters on this machine) and ``β = G`` (seconds per
byte), then picks the cheapest; ties go to the collective's preferred
order (:data:`repro.collectives.plan.ALGORITHMS`).  :class:`Selection`
keeps every candidate's modeled time and renders the choice with
:meth:`Selection.explain`.

The model is deliberately the coarse analytic one — it ranks algorithms,
it does not predict simulated time (the simulator has eager/rendezvous
switches, per-port congestion, and sync costs the closed form ignores).
Every formula is monotone in message size, and monotone in nranks within
an algorithm family (for the log-based families, across power-of-two
rank counts — the MPICH fold makes 2^k+1 ranks genuinely costlier than
2^(k+1)); the property suite pins both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.plan import ALGORITHMS, CollectiveError

__all__ = ["Selection", "model_time", "select"]


def _ceil_log2(n: int) -> int:
    return max(n - 1, 0).bit_length()


def _pof2(n: int) -> tuple[int, int]:
    p = 1 << (n.bit_length() - 1)
    return p, n - p


def model_time(coll: str, algorithm: str, nranks: int, nbytes: float,
               alpha: float, beta: float) -> float:
    """Modeled seconds for one collective of ``nbytes`` payload (the
    plan-module size convention) on ``nranks`` ranks."""
    if coll not in ALGORITHMS:
        raise CollectiveError(f"unknown collective {coll!r}")
    if algorithm not in ALGORITHMS[coll]:
        raise CollectiveError(f"unknown {coll} algorithm {algorithm!r}")
    P, m = nranks, float(nbytes)
    if P == 1:
        return 0.0
    pof2, rem = _pof2(P)
    L = pof2.bit_length() - 1
    Lc = _ceil_log2(P)
    if coll == "allreduce":
        if algorithm == "ring":
            return 2 * (P - 1) * alpha + 2 * m * (P - 1) / P * beta
        t = L * (alpha + m * beta)
        if rem:
            t += 2 * (alpha + m * beta)
        return t
    if coll == "allgather":
        if algorithm == "ring":
            return (P - 1) * (alpha + m * beta)
        # Core doubling moves every core's blocks once: (pof2-1) group
        # exchanges averaging P/pof2 blocks of m bytes.
        t = L * alpha + (pof2 - 1) * (P / pof2) * m * beta
        if rem:
            t += (alpha + m * beta) + (alpha + P * m * beta)
        return t
    if coll == "reduce_scatter":
        if algorithm == "ring":
            return (P - 1) * alpha + (P - 1) / P * m * beta
        t = L * alpha + (1 - 1 / pof2) * m * beta
        if rem:
            t += (alpha + m * beta) + (alpha + m / P * beta)
        return t
    if coll == "alltoall":
        # m is the per-destination block: both schedules are P-1 rounds
        # of one block (pairwise is contention-free but cost-identical,
        # so the preference order picks it when P is a power of two).
        return (P - 1) * (alpha + m * beta)
    if coll == "broadcast":
        rounds = Lc if algorithm == "tree" else P - 1
        return rounds * (alpha + m * beta)
    # barrier
    rounds = Lc if algorithm == "dissemination" else 2 * Lc
    return rounds * alpha


@dataclass(frozen=True)
class Selection:
    """The selector's verdict plus the full modeled-cost table."""

    coll: str
    nranks: int
    nbytes: float
    machine: str
    runtime: str
    algorithm: str
    costs: tuple[tuple[str, float], ...]  # (algorithm, modeled s), all candidates
    alpha: float
    beta: float

    def explain(self) -> str:
        """Human-readable report of the modeled choice."""
        from repro.transport.registry import get_backend

        lines = [
            f"{self.coll}(P={self.nranks}, {self.nbytes:.0f} B) on "
            f"{self.machine}/{self.runtime} -> {self.algorithm}",
            f"  model: alpha={self.alpha:.3e} s/round (L+o+o_sync), "
            f"beta={self.beta:.3e} s/B (G)",
            # Derived from the capability table, never from the name.
            f"  caps: {get_backend(self.runtime).caps.summary()}",
        ]
        width = max(len(a) for a, _ in self.costs)
        for alg, t in self.costs:
            mark = "  <- selected" if alg == self.algorithm else ""
            lines.append(f"  {alg:<{width}}  {t:.3e} s{mark}")
        return "\n".join(lines)


def select(coll: str, *, nranks: int, nbytes: float, machine,
           runtime: str) -> Selection:
    """Pick the cheapest algorithm for ``coll`` by the α–β model.

    ``machine`` is a :class:`repro.machines.base.Machine`; ``runtime`` a
    registered backend name — together they supply the calibrated LogGP
    parameters the model runs on.
    """
    from repro.transport.registry import get_backend

    if coll not in ALGORITHMS:
        raise CollectiveError(
            f"unknown collective {coll!r}; valid: " + ", ".join(ALGORITHMS)
        )
    backend = get_backend(runtime)
    if nranks >= 2:
        params = machine.loggp(
            backend.resolve_costs_key(), 0, 1, nranks=2, placement="spread",
            sided=backend.sided, ops_per_message=backend.caps.ops_per_message,
        )
        alpha = params.L + params.o + params.o_sync
        beta = params.G
    else:
        alpha = beta = 0.0
    pof2_ok = nranks & (nranks - 1) == 0
    costs = []
    for alg in ALGORITHMS[coll]:
        if coll == "alltoall" and alg == "pairwise" and not pof2_ok:
            continue
        costs.append((alg, model_time(coll, alg, nranks, nbytes, alpha, beta)))
    best = min(costs, key=lambda c: c[1])[0]  # ties: preference order wins
    return Selection(
        coll=coll,
        nranks=nranks,
        nbytes=float(nbytes),
        machine=machine.name,
        runtime=runtime,
        algorithm=best,
        costs=tuple(costs),
        alpha=alpha,
        beta=beta,
    )
