"""Run-one-collective entry point: plan, select, simulate, report.

:func:`run_collective` is the collectives analogue of
:func:`repro.workloads.flood.run_flood` — one call builds the job on a
machine/runtime pair, resolves the algorithm (``"auto"`` goes through the
LogGP selector), runs ``iters`` back-to-back collectives, and returns a
:class:`CollectiveResult` with NCCL-convention bandwidths:

* ``alg_bandwidth`` — payload bytes / time (what the caller feels);
* ``bus_bandwidth`` — per-rank wire bytes / time (what the fabric
  carries; for ring allreduce this is ``2(P-1)/P * nbytes / t``, the
  number comparable against a port's peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collectives.core import CollectiveComm, CollectiveStats
from repro.collectives.plan import CollectiveError, CollectivePlan, plan_collective
from repro.collectives.selector import Selection
from repro.comm.job import Job
from repro.machines.base import MachineModel

__all__ = ["CollectiveResult", "run_collective", "explain_collective"]


@dataclass(frozen=True)
class CollectiveResult:
    """One collective measurement (simulated timing + accounting)."""

    machine: str
    runtime: str
    coll: str
    algorithm: str
    nranks: int
    nelems: int
    nbytes: float  # payload bytes (the plan-module size convention)
    stripes: int
    iters: int
    time: float  # seconds per collective (barrier-corrected)
    time_total: float  # whole measured window
    alg_bandwidth: float  # payload bytes / time
    bus_bandwidth: float  # per-rank wire bytes / time (NCCL busbw)
    stats: CollectiveStats  # schedule accounting, totals over iters
    selection: Selection | None = None  # set when algorithm was "auto"
    results: list = field(default_factory=list)  # per-rank arrays (execute)

    @property
    def executed(self) -> bool:
        return bool(self.results)


def _program(ctx, comm, iters, values, op, root):
    ep = comm.endpoint(ctx)
    local = None if values is None else values.resolve(ctx.rank)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    out = None
    for _ in range(iters):
        out = yield from ep.run(local, op=op, root=root)
    return ctx.sim.now - t0, out


def _rank_values(values, rank):
    if values is None:
        return None
    if callable(values):
        return values(rank)
    return values[rank]


def run_collective(
    machine: MachineModel,
    runtime: str,
    coll: str,
    *,
    nranks: int,
    nelems: int | None = None,
    nbytes: int | None = None,
    algorithm: str = "auto",
    stripes: int = 1,
    iters: int = 1,
    values=None,
    op: str = "sum",
    root: int = 0,
    placement: str = "spread",
    word_bytes: float = 8.0,
) -> CollectiveResult:
    """Simulate ``iters`` runs of one collective and measure it.

    Size is given as ``nelems`` (words) or ``nbytes`` (rounded up to
    whole words); see :mod:`repro.collectives.plan` for what the size
    means per collective.  ``values`` switches on execute mode: a
    per-rank mapping (``values[rank]`` or a callable) of local inputs,
    returned reduced/gathered in ``result.results``.
    """
    if (nelems is None) == (nbytes is None) and coll != "barrier":
        raise CollectiveError(f"{coll} needs exactly one of nelems=/nbytes=")
    if nelems is None:
        nelems = 0 if nbytes is None else max(int(-(-nbytes // word_bytes)), 1)
    if coll == "barrier":
        nelems = 0
    if iters < 1:
        raise CollectiveError(f"iters must be >= 1, got {iters}")
    plan, selection = plan_collective(
        coll,
        nranks=nranks,
        nelems=nelems,
        algorithm=algorithm,
        stripes=stripes,
        machine=machine,
        runtime=runtime,
        word_bytes=word_bytes,
    )
    job = Job(machine, nranks, runtime, placement=placement)
    execute = values is not None
    comm = CollectiveComm(job, [plan] * iters, execute=execute)
    span_name = f"collective:{coll}:{plan.algorithm}"
    with job.spans.span(span_name):
        res = job.run(
            _program,
            comm,
            iters,
            # Per-rank inputs resolve inside the program via ctx.rank —
            # but job.run passes the same args to every rank, so wrap.
            None if values is None else _PerRank(values),
            op,
            root,
        )
    elapsed = max(r[0] for r in res.results)
    net = max(elapsed - job._barrier_delay, 1e-12)
    per_iter = net / iters
    payload = plan.nbytes
    wire_per_rank = comm.stats.bytes_moved / iters / nranks
    if job.metrics is not None:
        job.metrics.counter(f"collectives.{coll}.runs").inc(iters)
        job.metrics.counter(f"collectives.{coll}.bytes").inc(
            comm.stats.bytes_moved
        )
    return CollectiveResult(
        machine=machine.name,
        runtime=job.runtime_name,
        coll=coll,
        algorithm=plan.algorithm,
        nranks=nranks,
        nelems=nelems,
        nbytes=payload,
        stripes=stripes,
        iters=iters,
        time=per_iter,
        time_total=elapsed,
        alg_bandwidth=payload / per_iter if payload else 0.0,
        bus_bandwidth=wire_per_rank / per_iter if wire_per_rank else 0.0,
        stats=comm.stats,
        selection=selection,
        results=[r[1] for r in res.results] if execute else [],
    )


class _PerRank:
    """Late-bound per-rank values: the program hands ``ctx.rank`` in."""

    def __init__(self, values):
        self.values = values

    def resolve(self, rank):
        return _rank_values(self.values, rank)


def explain_collective(
    machine: MachineModel,
    runtime: str,
    coll: str,
    *,
    nranks: int,
    nelems: int | None = None,
    nbytes: int | None = None,
    word_bytes: float = 8.0,
) -> Selection:
    """Model-only: which algorithm the selector picks and why."""
    from repro.collectives.selector import select

    if nelems is not None:
        nbytes = nelems * word_bytes
    elif nbytes is None:
        nbytes = 0
    return select(coll, nranks=nranks, nbytes=nbytes, machine=machine,
                  runtime=runtime)
