"""Collective plans: which algorithm runs and its round structure.

A :class:`CollectivePlan` is the static shape of one collective call —
enough to size the round-slotted mailbox (one signal slot per round, one
data region per slot in execute mode) before any rank program runs, and
for every backend to agree on the same schedule.  :func:`plan_collective`
resolves ``algorithm="auto"`` through the LogGP selector.

Size conventions (``nelems`` is in window words, ``word_bytes`` each):

================  =====================================================
collective        ``nelems`` means
================  =====================================================
allreduce         full vector length (same on every rank)
reduce_scatter    full input vector length; output is the rank's chunk
allgather         per-rank block length; output is ``nranks * nelems``
alltoall          per-destination block length (``nranks * nelems`` local)
broadcast         full vector length
barrier           ignored (always 0)
================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "COLLECTIVES",
    "ALGORITHMS",
    "STRIPEABLE",
    "CollectiveError",
    "CollectivePlan",
    "plan_collective",
]

# collective -> its algorithm strategies, selector-preference order first.
ALGORITHMS: dict[str, tuple[str, ...]] = {
    "allreduce": ("ring", "recursive_doubling"),
    "allgather": ("ring", "recursive_doubling"),
    "reduce_scatter": ("ring", "recursive_halving"),
    "alltoall": ("pairwise", "ring"),
    "broadcast": ("tree", "ring"),
    "barrier": ("dissemination", "tree"),
}

COLLECTIVES: tuple[str, ...] = tuple(ALGORITHMS)

# Algorithms whose data rounds split into ``stripes`` concurrent
# sub-messages (NCCL's multi-ring: recover multi-port bandwidth).
STRIPEABLE: frozenset[tuple[str, str]] = frozenset(
    {
        ("allreduce", "ring"),
        ("reduce_scatter", "ring"),
        ("allgather", "ring"),
        ("alltoall", "ring"),
        ("broadcast", "ring"),
    }
)


class CollectiveError(ValueError):
    """Invalid collective plan (unknown name, bad size, bad strategy)."""


def _ceil_log2(n: int) -> int:
    return max(n - 1, 0).bit_length()


def _pof2(n: int) -> tuple[int, int]:
    """Largest power of two <= n and the remainder (MPICH fold size)."""
    p = 1 << (n.bit_length() - 1)
    return p, n - p


@dataclass(frozen=True)
class CollectivePlan:
    """One collective call's static shape, shared by all backends."""

    coll: str
    algorithm: str
    nranks: int
    nelems: int
    stripes: int = 1
    word_bytes: float = field(default=8.0, compare=True)

    def __post_init__(self):
        if self.coll not in ALGORITHMS:
            raise CollectiveError(
                f"unknown collective {self.coll!r}; valid: "
                + ", ".join(COLLECTIVES)
            )
        if self.algorithm not in ALGORITHMS[self.coll]:
            raise CollectiveError(
                f"unknown {self.coll} algorithm {self.algorithm!r}; valid: "
                + ", ".join(ALGORITHMS[self.coll])
            )
        if self.nranks < 1:
            raise CollectiveError(f"nranks must be >= 1, got {self.nranks}")
        if self.nelems < 0:
            raise CollectiveError(f"nelems must be >= 0, got {self.nelems}")
        if self.stripes < 1:
            raise CollectiveError(f"stripes must be >= 1, got {self.stripes}")
        if self.stripes > 1 and (self.coll, self.algorithm) not in STRIPEABLE:
            raise CollectiveError(
                f"striping is only supported for ring algorithms, not "
                f"{self.coll}/{self.algorithm}"
            )
        if self.coll != "barrier" and self.nelems == 0:
            raise CollectiveError(f"{self.coll} needs nelems >= 1")
        if self.coll == "alltoall" and self.algorithm == "pairwise":
            p, rem = _pof2(self.nranks)
            if rem:
                raise CollectiveError(
                    "pairwise alltoall needs a power-of-two nranks "
                    f"(got {self.nranks}); use algorithm='ring'"
                )

    # -- round structure ------------------------------------------------

    @property
    def rounds(self) -> int:
        """Signal slots this plan consumes (one per schedule round)."""
        P = self.nranks
        if P == 1:
            return 0
        pof2, rem = _pof2(P)
        L = pof2.bit_length() - 1
        fold = 2 if rem else 0
        return {
            ("allreduce", "ring"): 2 * (P - 1),
            ("allreduce", "recursive_doubling"): L + fold,
            ("allgather", "ring"): P - 1,
            ("allgather", "recursive_doubling"): L + fold,
            ("reduce_scatter", "ring"): P - 1,
            ("reduce_scatter", "recursive_halving"): L + fold,
            ("alltoall", "pairwise"): P - 1,
            ("alltoall", "ring"): P - 1,
            ("broadcast", "tree"): _ceil_log2(P),
            ("broadcast", "ring"): P - 1,
            ("barrier", "dissemination"): _ceil_log2(P),
            ("barrier", "tree"): 2 * _ceil_log2(P),
        }[(self.coll, self.algorithm)]

    @property
    def slot_words(self) -> int:
        """Upper bound on any one round message, in words (execute-mode
        data-slot sizing)."""
        if self.coll == "barrier":
            return 0
        if self.coll in ("allgather",):
            return self.nranks * self.nelems  # recursive-doubling fold-out
        return self.nelems

    @property
    def nbytes(self) -> float:
        """The collective's message size ``m`` (Hockney/selector units)."""
        return self.nelems * self.word_bytes


def plan_collective(
    coll: str,
    *,
    nranks: int,
    nelems: int,
    algorithm: str = "auto",
    stripes: int = 1,
    machine=None,
    runtime: str | None = None,
    word_bytes: float = 8.0,
):
    """Resolve ``algorithm`` (possibly ``"auto"``) into a
    :class:`CollectivePlan`; returns ``(plan, selection)``.

    ``selection`` is the :class:`repro.collectives.selector.Selection`
    with the modeled per-algorithm costs (its ``explain()`` reports the
    choice) when the selector ran — ``algorithm="auto"`` needs ``machine``
    and ``runtime`` — otherwise None.
    """
    selection = None
    if algorithm == "auto":
        from repro.collectives.selector import select

        if machine is None or runtime is None:
            raise CollectiveError(
                "algorithm='auto' needs machine= and runtime= to model costs"
            )
        selection = select(
            coll,
            nranks=nranks,
            nbytes=nelems * word_bytes,
            machine=machine,
            runtime=runtime,
        )
        algorithm = selection.algorithm
    plan = CollectivePlan(
        coll=coll,
        algorithm=algorithm,
        nranks=nranks,
        nelems=nelems,
        stripes=stripes,
        word_bytes=word_bytes,
    )
    return plan, selection
