"""Collective execution core: one mailbox channel, many collective calls.

:class:`CollectiveComm` lays a sequence of :class:`CollectivePlan` ops out
over a single round-slotted :class:`~repro.transport.api.MailboxSpec`
channel — each op gets a contiguous block of signal slots (one per round),
so slots are *never reused* and one-sided signals need no reset.  Because
the channel is ordinary transport, every algorithm runs unchanged on all
registered backends.

Two modes, chosen at construction:

* **simulate** (default) — data slots collapse to a single word (puts
  carry ``nelems`` only, no payload); pure timing/accounting, any size.
* **execute** (``execute=True``) — each slot gets a real data region and
  payloads move; algorithms produce numerically correct results (the
  value-parity tests), so sizes should stay small.

:class:`CollectiveStats` is the backend-independent accounting: the exec
helper counts each schedule message (and its stripes) exactly once on the
sender side, so two runs of the same plan on different backends report
identical messages/bytes — the cross-backend parity invariant.  (Raw
context counters still differ per backend: a shmem signal rides the data
put, the 4-op emulation pays separate ops — that is the paper's point.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.algorithms import ALGORITHM_TABLE
from repro.collectives.plan import CollectiveError, CollectivePlan
from repro.ir.lower import Emitter
from repro.transport.api import MailboxSpec

__all__ = ["REDUCE_OPS", "CollectiveStats", "CollectiveComm", "CollectiveEndpoint"]

REDUCE_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


@dataclass
class CollectiveStats:
    """Backend-independent schedule accounting (see module docstring)."""

    ops: int = 0
    rounds: int = 0
    messages: int = 0
    bytes_moved: float = 0.0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
        }


class CollectiveComm:
    """Channel resources for a planned sequence of collective calls.

    Build it *before* ``job.run`` (channel allocation happens outside the
    simulation); each rank program then calls :meth:`endpoint` and runs
    the ops in plan order (SPMD — every rank must make the same calls).
    """

    def __init__(self, job, plans, *, execute: bool = False):
        if isinstance(plans, CollectivePlan):
            plans = [plans]
        self.plans: list[CollectivePlan] = list(plans)
        if not self.plans:
            raise CollectiveError("CollectiveComm needs at least one plan")
        for p in self.plans:
            if p.nranks != job.nranks:
                raise CollectiveError(
                    f"plan nranks={p.nranks} != job nranks={job.nranks}"
                )
        self.job = job
        self.execute = execute
        # Per-op-kind IR lowering counts (RoundSend/RoundRecv/MsgDrain),
        # merged across all ranks' Emitters.
        self.ir_counts: dict[str, int] = {}
        self.stats = CollectiveStats()
        self.op_stats = [CollectiveStats() for _ in self.plans]
        self.bases: list[int] = []
        nslots = 0
        slot_offsets: list[int] = []
        data_off = 0
        for p in self.plans:
            self.bases.append(nslots)
            nslots += p.rounds
            if execute:
                for _ in range(p.rounds):
                    slot_offsets.append(data_off)
                    data_off += max(p.slot_words, 1)
        if execute:
            data_words = max(data_off, 1)
            if not slot_offsets:
                slot_offsets = [0]
        else:
            # Simulate mode: puts carry only sizes, so a one-word data
            # window serves any nelems (no memory scaling with payload).
            data_words = 1
            slot_offsets = [0] * max(nslots, 1)
        word_bytes = self.plans[0].word_bytes
        spec = MailboxSpec(
            data_words=data_words,
            nslots=max(nslots, 1),
            offsets={r: tuple(slot_offsets) for r in range(job.nranks)},
            word_bytes=word_bytes,
            read_data=execute,
        )
        self.channel = job.channel(spec)

    def endpoint(self, ctx) -> "CollectiveEndpoint":
        return CollectiveEndpoint(self, ctx)


class CollectiveEndpoint:
    """One rank's cursor over the planned collective ops."""

    def __init__(self, comm: CollectiveComm, ctx):
        self.comm = comm
        self.ctx = ctx
        self.ep = comm.channel.endpoint(ctx)
        # Round schedules are data-dependent (algorithm choice, rank
        # geometry), so collectives lower through the dynamic-IR Emitter:
        # each verb becomes a RoundSend/RoundRecv/MsgDrain op interpreted
        # by repro.ir.lower._exec onto this endpoint.
        self.em = Emitter(self.ep, ctx, counts=comm.ir_counts)
        self._op = 0

    def run(self, values=None, *, op: str = "sum", root: int = 0):
        """Execute the next planned collective on this rank.

        ``values`` is this rank's local input (execute mode only; see the
        plan module for per-collective size conventions), ``op`` the
        reduction for allreduce/reduce_scatter, ``root`` the broadcast
        root.  Returns the local result array in execute mode, else None.
        """
        comm = self.comm
        if self._op >= len(comm.plans):
            raise CollectiveError(
                f"rank {self.ctx.rank} ran more collectives than the "
                f"{len(comm.plans)} planned"
            )
        idx = self._op
        self._op += 1
        plan = comm.plans[idx]
        if op not in REDUCE_OPS:
            raise CollectiveError(
                f"unknown reduction {op!r}; valid: " + ", ".join(REDUCE_OPS)
            )
        if not 0 <= root < plan.nranks:
            raise CollectiveError(f"root {root} out of range for P={plan.nranks}")
        if self.ctx.rank == 0:
            for st in (comm.stats, comm.op_stats[idx]):
                st.ops += 1
                st.rounds += plan.rounds
        v = self._prepare(plan, values, root)
        ex = _RoundExec(comm, self.em, self.ctx, plan, comm.bases[idx], idx,
                        REDUCE_OPS[op], root, v)
        result = yield from ALGORITHM_TABLE[(plan.coll, plan.algorithm)](ex)
        yield from self.em.drain()
        return result

    def _prepare(self, plan: CollectivePlan, values, root: int):
        if not self.comm.execute or plan.coll == "barrier":
            return None
        dtype = np.dtype(self.comm.channel.spec.dtype)
        expected = plan.nelems * (plan.nranks if plan.coll == "alltoall" else 1)
        if values is None:
            if plan.coll == "broadcast" and self.ctx.rank != root:
                return np.zeros(expected, dtype=dtype)
            raise CollectiveError(
                f"execute-mode {plan.coll} needs per-rank values"
            )
        v = np.array(values, dtype=dtype).ravel().copy()
        if len(v) != expected:
            raise CollectiveError(
                f"{plan.coll} values length {len(v)} != expected {expected}"
            )
        return v


class _RoundExec:
    """What an algorithm schedule sees: rank geometry, the working buffer,
    and round-addressed send/recv with uniform stats accounting.

    Verbs lower through the IR :class:`~repro.ir.lower.Emitter` rather
    than calling the endpoint directly, so every round of every schedule
    is an IR op with per-kind counts."""

    __slots__ = ("comm", "em", "ctx", "plan", "base", "idx", "reduce",
                 "root", "v", "P", "rank", "nelems", "stripes", "execute")

    def __init__(self, comm, em, ctx, plan, base, idx, reduce, root, v):
        self.comm = comm
        self.em = em
        self.ctx = ctx
        self.plan = plan
        self.base = base
        self.idx = idx
        self.reduce = reduce
        self.root = root
        self.v = v
        self.P = plan.nranks
        self.rank = ctx.rank
        self.nelems = plan.nelems
        self.stripes = plan.stripes
        self.execute = comm.execute

    def send(self, dst, rnd, words, values=None, parts=1):
        wb = self.plan.word_bytes
        for st in (self.comm.stats, self.comm.op_stats[self.idx]):
            st.messages += parts
            st.bytes_moved += words * wb
        yield from self.em.send_round(
            dst, self.base + rnd, words=words, parts=parts, values=values
        )

    def recv(self, src, rnd, words, parts=1):
        got = yield from self.em.recv_round(
            src, self.base + rnd, words=words, parts=parts
        )
        return got

    def exchange(self, dst, src, rnd, send_words, recv_words,
                 values=None, parts=1):
        yield from self.send(dst, rnd, send_words, values=values, parts=parts)
        got = yield from self.recv(src, rnd, recv_words, parts=parts)
        return got
