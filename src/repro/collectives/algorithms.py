"""Collective algorithm schedules over the round-slotted mailbox verbs.

Every algorithm is a generator taking one argument ``e`` — a
:class:`repro.collectives.core._RoundExec` bound to one rank of one
collective call — and drives it with ``e.send`` / ``e.recv`` /
``e.exchange``.  The schedules are *pure*: they never see a backend, a
context, or a window; the exec helper maps (peer, round) onto the
channel's slot space and does the stats accounting identically for every
backend (the cross-backend parity guarantee).

Invariant every schedule keeps: **at most one logical message per
(receiver, round)** — that is what makes a round a mailbox slot, lets
one-sided signals accumulate per-stripe without ambiguity, and keeps the
bulk engine's single-publisher rendezvous exact.

Edge cases are handled here, once, for all backends:

* ``nranks == 1`` — every collective degenerates to a local no-op
  (zero rounds, zero messages);
* non-power-of-two ranks — recursive doubling/halving run the MPICH
  fold: odd front ranks fold into their even neighbour before the
  power-of-two core phase and are folded back out after;
* ``nelems < nranks`` — balanced chunking leaves some chunks empty;
  empty chunks still travel as zero-word round messages (pure
  notification) so the round structure is size-independent.
"""

from __future__ import annotations

import numpy as np

from repro.transport.api import part_bounds

__all__ = ["ALGORITHM_TABLE"]


def _ceil_log2(n: int) -> int:
    return max(n - 1, 0).bit_length()


def _pof2(n: int) -> tuple[int, int]:
    p = 1 << (n.bit_length() - 1)
    return p, n - p


def _sl(v, lo, hi):
    return None if v is None else v[lo:hi]


def _core_of(me: int, rem: int) -> int:
    """MPICH fold: rank -> core index in the power-of-two group."""
    return me // 2 if me < 2 * rem else me - rem


def _rank_of(core: int, rem: int) -> int:
    """Inverse map: core index -> the even/back rank that runs it."""
    return core * 2 if core < rem else core + rem


def _rank_lo(core: int, rem: int) -> int:
    """First rank whose block core ``core`` initially owns (the fold
    gives core c < rem ranks {2c, 2c+1}, core c >= rem rank {c+rem};
    owned rank sets are contiguous and ordered by core)."""
    return 2 * core if core < rem else core + rem


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------


def allreduce_ring(e):
    """Bandwidth-optimal ring: reduce-scatter pass then allgather pass,
    2(P-1) rounds moving ~nelems/P words each (stripe-able)."""
    P, me = e.P, e.rank
    v = e.v
    if P == 1:
        return v
    bounds = part_bounds(e.nelems, P)
    right, left = (me + 1) % P, (me - 1) % P
    for r in range(P - 1):
        slo, shi = bounds[(me - r) % P]
        dlo, dhi = bounds[(me - r - 1) % P]
        got = yield from e.exchange(
            right, left, r, shi - slo, dhi - dlo,
            values=_sl(v, slo, shi), parts=e.stripes,
        )
        if e.execute and dhi > dlo:
            v[dlo:dhi] = e.reduce(v[dlo:dhi], got)
    for r in range(P - 1):
        slo, shi = bounds[(me + 1 - r) % P]
        dlo, dhi = bounds[(me - r) % P]
        got = yield from e.exchange(
            right, left, (P - 1) + r, shi - slo, dhi - dlo,
            values=_sl(v, slo, shi), parts=e.stripes,
        )
        if e.execute and dhi > dlo:
            v[dlo:dhi] = got
    return v


def allreduce_recursive_doubling(e):
    """Latency-optimal recursive doubling with the MPICH non-power-of-two
    fold: ceil(log2 P) full-vector exchanges (+2 fold rounds)."""
    P, me, n = e.P, e.rank, e.nelems
    v = e.v
    if P == 1:
        return v
    pof2, rem = _pof2(P)
    L = pof2.bit_length() - 1
    slot = 0
    in_core = me >= 2 * rem or me % 2 == 0
    if rem:
        if me < 2 * rem:
            if me % 2:
                yield from e.send(me - 1, 0, n, values=v)
            else:
                got = yield from e.recv(me + 1, 0, n)
                if e.execute:
                    v[:] = e.reduce(v, got)
        slot = 1
    if in_core:
        core = _core_of(me, rem)
        for k in range(L):
            peer = _rank_of(core ^ (1 << k), rem)
            got = yield from e.exchange(peer, peer, slot + k, n, n, values=v)
            if e.execute:
                v[:] = e.reduce(v, got)
    slot += L
    if rem and me < 2 * rem:
        if me % 2:
            got = yield from e.recv(me - 1, slot, n)
            if e.execute:
                v[:] = got
        else:
            yield from e.send(me + 1, slot, n, values=v)
    return v


# ---------------------------------------------------------------------------
# allgather
# ---------------------------------------------------------------------------


def allgather_ring(e):
    """P-1 rounds passing blocks around the ring (stripe-able)."""
    P, me, n = e.P, e.rank, e.nelems
    out = None
    if e.execute:
        out = np.zeros(P * n, dtype=e.v.dtype)
        out[me * n : (me + 1) * n] = e.v
    if P == 1:
        return out
    right, left = (me + 1) % P, (me - 1) % P
    for r in range(P - 1):
        si, di = (me - r) % P, (me - r - 1) % P
        got = yield from e.exchange(
            right, left, r, n, n,
            values=_sl(out, si * n, (si + 1) * n), parts=e.stripes,
        )
        if e.execute:
            out[di * n : (di + 1) * n] = got
    return out


def allgather_recursive_doubling(e):
    """Recursive doubling of owned block *sets* (contiguous core ranges),
    with fold-in/fold-out rounds for non-power-of-two P."""
    P, me, n = e.P, e.rank, e.nelems
    out = None
    if e.execute:
        out = np.zeros(P * n, dtype=e.v.dtype)
        out[me * n : (me + 1) * n] = e.v
    if P == 1:
        return out
    pof2, rem = _pof2(P)
    L = pof2.bit_length() - 1
    slot = 0
    in_core = me >= 2 * rem or me % 2 == 0
    if rem:
        if me < 2 * rem:
            if me % 2:
                yield from e.send(me - 1, 0, n, values=e.v)
            else:
                got = yield from e.recv(me + 1, 0, n)
                if e.execute:
                    out[(me + 1) * n : (me + 2) * n] = got
        slot = 1
    if in_core:
        core = _core_of(me, rem)
        for k in range(L):
            g = 1 << k
            a = core & ~(g - 1)  # my XOR group of size g owns cores [a, a+g)
            peer_core = core ^ g
            pa = peer_core & ~(g - 1)
            peer = _rank_of(peer_core, rem)
            s_lo, s_hi = _rank_lo(a, rem), _rank_lo(a + g, rem)
            r_lo, r_hi = _rank_lo(pa, rem), _rank_lo(pa + g, rem)
            got = yield from e.exchange(
                peer, peer, slot + k,
                (s_hi - s_lo) * n, (r_hi - r_lo) * n,
                values=_sl(out, s_lo * n, s_hi * n),
            )
            if e.execute:
                out[r_lo * n : r_hi * n] = got
    slot += L
    if rem and me < 2 * rem:
        if me % 2 == 0:
            yield from e.send(me + 1, slot, P * n, values=out)
        else:
            got = yield from e.recv(me - 1, slot, P * n)
            if e.execute:
                out[:] = got
    return out


# ---------------------------------------------------------------------------
# reduce_scatter
# ---------------------------------------------------------------------------


def reduce_scatter_ring(e):
    """P-1 ring rounds, shifted so the final accumulated chunk is the
    rank's own (stripe-able; empty chunks are zero-word rounds)."""
    P, me = e.P, e.rank
    v = e.v
    bounds = part_bounds(e.nelems, P)
    mlo, mhi = bounds[me]
    if P == 1:
        return None if v is None else v[mlo:mhi].copy()
    right, left = (me + 1) % P, (me - 1) % P
    for r in range(P - 1):
        slo, shi = bounds[(me - r - 1) % P]
        dlo, dhi = bounds[(me - r - 2) % P]
        got = yield from e.exchange(
            right, left, r, shi - slo, dhi - dlo,
            values=_sl(v, slo, shi), parts=e.stripes,
        )
        if e.execute and dhi > dlo:
            v[dlo:dhi] = e.reduce(v[dlo:dhi], got)
    return None if v is None else v[mlo:mhi].copy()


def reduce_scatter_recursive_halving(e):
    """Recursive halving over contiguous chunk ranges with the MPICH
    fold for non-power-of-two P."""
    P, me, n = e.P, e.rank, e.nelems
    v = e.v
    bounds = part_bounds(n, P)
    mlo, mhi = bounds[me]
    if P == 1:
        return None if v is None else v[mlo:mhi].copy()
    pof2, rem = _pof2(P)
    L = pof2.bit_length() - 1

    def elem_lo(core):
        return bounds[_rank_lo(core, rem)][0] if core < pof2 else n

    slot = 0
    in_core = me >= 2 * rem or me % 2 == 0
    if rem:
        if me < 2 * rem:
            if me % 2:
                yield from e.send(me - 1, 0, n, values=v)
            else:
                got = yield from e.recv(me + 1, 0, n)
                if e.execute:
                    v[:] = e.reduce(v, got)
        slot = 1
    if in_core:
        core = _core_of(me, rem)
        for k in range(L):
            g = pof2 >> k  # current group size; halve each round
            h = g >> 1
            a = core & ~(g - 1)
            peer = _rank_of(core ^ h, rem)
            lo0, lo1, lo2 = elem_lo(a), elem_lo(a + h), elem_lo(a + g)
            if core < a + h:  # low half keeps [lo0, lo1), ships the rest
                s_lo, s_hi, r_lo, r_hi = lo1, lo2, lo0, lo1
            else:
                s_lo, s_hi, r_lo, r_hi = lo0, lo1, lo1, lo2
            got = yield from e.exchange(
                peer, peer, slot + k, s_hi - s_lo, r_hi - r_lo,
                values=_sl(v, s_lo, s_hi),
            )
            if e.execute and r_hi > r_lo:
                v[r_lo:r_hi] = e.reduce(v[r_lo:r_hi], got)
    slot += L
    if rem and me < 2 * rem:
        if me % 2 == 0:
            olo, ohi = bounds[me + 1]
            yield from e.send(me + 1, slot, ohi - olo, values=_sl(v, olo, ohi))
        else:
            got = yield from e.recv(me - 1, slot, mhi - mlo)
            if e.execute and mhi > mlo:
                v[mlo:mhi] = got
    return None if v is None else v[mlo:mhi].copy()


# ---------------------------------------------------------------------------
# alltoall
# ---------------------------------------------------------------------------


def alltoall_pairwise(e):
    """XOR-pairwise exchange: P-1 contention-free rounds (power-of-two
    P only; the plan validates)."""
    P, me, n = e.P, e.rank, e.nelems
    v = e.v
    out = None
    if e.execute:
        out = np.zeros(P * n, dtype=v.dtype)
        out[me * n : (me + 1) * n] = v[me * n : (me + 1) * n]
    if P == 1:
        return out
    for r in range(1, P):
        peer = me ^ r
        got = yield from e.exchange(
            peer, peer, r - 1, n, n,
            values=_sl(v, peer * n, (peer + 1) * n),
        )
        if e.execute:
            out[peer * n : (peer + 1) * n] = got
    return out


def alltoall_ring(e):
    """Shifted-ring exchange: round r sends to me+r, receives from me-r
    (any P, stripe-able)."""
    P, me, n = e.P, e.rank, e.nelems
    v = e.v
    out = None
    if e.execute:
        out = np.zeros(P * n, dtype=v.dtype)
        out[me * n : (me + 1) * n] = v[me * n : (me + 1) * n]
    if P == 1:
        return out
    for r in range(1, P):
        dst, src = (me + r) % P, (me - r) % P
        got = yield from e.exchange(
            dst, src, r - 1, n, n,
            values=_sl(v, dst * n, (dst + 1) * n), parts=e.stripes,
        )
        if e.execute:
            out[src * n : (src + 1) * n] = got
    return out


# ---------------------------------------------------------------------------
# broadcast
# ---------------------------------------------------------------------------


def broadcast_tree(e):
    """Binomial tree: ceil(log2 P) rounds, senders double each round."""
    P, me, n, root = e.P, e.rank, e.nelems, e.root
    v = e.v
    if P == 1:
        return v
    rel = (me - root) % P
    for k in range(_ceil_log2(P)):
        if rel < (1 << k):
            dst_rel = rel + (1 << k)
            if dst_rel < P:
                yield from e.send((dst_rel + root) % P, k, n, values=v)
        elif rel < (1 << (k + 1)):
            got = yield from e.recv(((rel - (1 << k)) + root) % P, k, n)
            if e.execute:
                v[:] = got
    return v


def broadcast_ring(e):
    """Store-and-forward chain from the root (stripe-able): the baseline
    the tree is measured against."""
    P, me, n, root = e.P, e.rank, e.nelems, e.root
    v = e.v
    if P == 1:
        return v
    rel = (me - root) % P
    if rel > 0:
        got = yield from e.recv((me - 1) % P, rel - 1, n, parts=e.stripes)
        if e.execute:
            v[:] = got
    if rel < P - 1:
        yield from e.send((me + 1) % P, rel, n, values=v, parts=e.stripes)
    return v


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------


def barrier_dissemination(e):
    """ceil(log2 P) zero-word rounds to exponentially distant peers."""
    P, me = e.P, e.rank
    if P == 1:
        return None
    for k in range(_ceil_log2(P)):
        yield from e.send((me + (1 << k)) % P, k, 0)
        yield from e.recv((me - (1 << k)) % P, k, 0)
    return None


def barrier_tree(e):
    """Binomial gather to rank 0 then binomial release: 2 ceil(log2 P)
    rounds, half the messages of dissemination."""
    P, me = e.P, e.rank
    if P == 1:
        return None
    L = _ceil_log2(P)
    for g in range(L):  # gather, largest sub-tree first
        k = L - 1 - g
        if (1 << k) <= me < (1 << (k + 1)):
            yield from e.send(me - (1 << k), g, 0)
        elif me < (1 << k) and me + (1 << k) < P:
            yield from e.recv(me + (1 << k), g, 0)
    for k in range(L):  # release, mirror of the broadcast tree
        if me < (1 << k):
            if me + (1 << k) < P:
                yield from e.send(me + (1 << k), L + k, 0)
        elif me < (1 << (k + 1)):
            yield from e.recv(me - (1 << k), L + k, 0)
    return None


ALGORITHM_TABLE = {
    ("allreduce", "ring"): allreduce_ring,
    ("allreduce", "recursive_doubling"): allreduce_recursive_doubling,
    ("allgather", "ring"): allgather_ring,
    ("allgather", "recursive_doubling"): allgather_recursive_doubling,
    ("reduce_scatter", "ring"): reduce_scatter_ring,
    ("reduce_scatter", "recursive_halving"): reduce_scatter_recursive_halving,
    ("alltoall", "pairwise"): alltoall_pairwise,
    ("alltoall", "ring"): alltoall_ring,
    ("broadcast", "tree"): broadcast_tree,
    ("broadcast", "ring"): broadcast_ring,
    ("barrier", "dissemination"): barrier_dissemination,
    ("barrier", "tree"): barrier_tree,
}
