"""repro.collectives — collective algorithms on the transport verbs.

Every algorithm (ring, recursive doubling/halving, binomial trees,
dissemination) is a pure schedule over the round-slotted mailbox verbs
(``send_round`` / ``recv_round``), so it runs on all registered runtime
backends — two-sided MPI, one-sided MPI, NVSHMEM, and the hardware
put-with-signal projection — with the paper-calibrated op accounting of
each.  See docs/COLLECTIVES.md.

Quick start::

    from repro import get_machine
    from repro.collectives import run_collective

    r = run_collective(get_machine("perlmutter-gpu"), "shmem",
                       "allreduce", nranks=4, nbytes=4 << 20)
    print(r.algorithm, r.bus_bandwidth / 1e9, "GB/s")
    print(r.selection.explain())
"""

from repro.collectives.api import (
    CollectiveResult,
    explain_collective,
    run_collective,
)
from repro.collectives.core import (
    REDUCE_OPS,
    CollectiveComm,
    CollectiveEndpoint,
    CollectiveStats,
)
from repro.collectives.plan import (
    ALGORITHMS,
    COLLECTIVES,
    STRIPEABLE,
    CollectiveError,
    CollectivePlan,
    plan_collective,
)
from repro.collectives.selector import Selection, model_time, select

__all__ = [
    "ALGORITHMS",
    "COLLECTIVES",
    "STRIPEABLE",
    "CollectiveComm",
    "CollectiveEndpoint",
    "CollectiveError",
    "CollectivePlan",
    "CollectiveResult",
    "CollectiveStats",
    "REDUCE_OPS",
    "Selection",
    "explain_collective",
    "model_time",
    "plan_collective",
    "run_collective",
    "select",
]
