"""Post-run analysis of traced jobs.

Run any job with ``trace=True`` and feed ``job.tracer`` to the tools here
(or stream a run to disk with :class:`repro.obs.sinks.JsonlSink` and load
it back with :func:`load_jsonl` — the loaded tracer is analysed
identically to an in-memory one):

* :func:`message_stats` — size/latency distributions of everything that
  crossed the fabric (the raw material of the paper's Fig. 6 verticals);
* :func:`bandwidth_timeline` — achieved GB/s over time windows (how close
  a phase runs to its roofline, and when);
* :func:`rank_activity` — per-rank send/receive/sync counts and the
  communication skew across ranks;
* :func:`comm_matrix` — the rank-to-rank traffic matrix (spotting the
  hashtable's uniform spray vs the stencil's neighbor bands);
* :func:`ascii_timeline` — terminal rendering of a timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable

import numpy as np

from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "MessageStats",
    "message_stats",
    "bandwidth_timeline",
    "rank_activity",
    "comm_matrix",
    "ascii_timeline",
    "load_jsonl",
    "from_records",
]


def load_jsonl(path: str | Path) -> Tracer:
    """Load a JSONL trace file (written by ``repro.obs.sinks.JsonlSink``)
    into a plain in-memory :class:`Tracer`.

    Every analysis function here consumes the result exactly as it would a
    live ``job.tracer``; blank lines are skipped.
    """
    from repro.obs.sinks import record_from_json

    tracer = Tracer()
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                tracer.sink.append(record_from_json(line))
    return tracer


def from_records(records: Iterable[TraceRecord]) -> Tracer:
    """Wrap pre-existing records (e.g. a ring sink's survivors) in a
    :class:`Tracer` so the analysis helpers apply."""
    tracer = Tracer()
    for rec in records:
        tracer.sink.append(rec)
    return tracer


@dataclass(frozen=True)
class MessageStats:
    """Distributional summary of the fabric traffic in one trace."""

    count: int
    total_bytes: float
    min_bytes: float
    mean_bytes: float
    p50_bytes: float
    max_bytes: float
    mean_wire_time: float  # seconds from injection start to arrival
    p95_wire_time: float

    def words_per_message(self, word: int = 8) -> float:
        return self.mean_bytes / word if self.count else float("nan")


def _transfers(tracer: Tracer) -> list:
    return tracer.filter(kind="net.transfer")


def message_stats(tracer: Tracer) -> MessageStats:
    """Summarise every fabric transfer recorded in the trace."""
    recs = _transfers(tracer)
    if not recs:
        raise ValueError("trace contains no fabric transfers")
    sizes = np.array([r.detail["nbytes"] for r in recs], dtype=float)
    wires = np.array(
        [r.detail["arrival"] - r.detail["start"] for r in recs], dtype=float
    )
    return MessageStats(
        count=len(recs),
        total_bytes=float(sizes.sum()),
        min_bytes=float(sizes.min()),
        mean_bytes=float(sizes.mean()),
        p50_bytes=float(np.percentile(sizes, 50)),
        max_bytes=float(sizes.max()),
        mean_wire_time=float(wires.mean()),
        p95_wire_time=float(np.percentile(wires, 95)),
    )


def bandwidth_timeline(
    tracer: Tracer, *, nbins: int = 20
) -> list[tuple[float, float]]:
    """Achieved fabric bandwidth per time window.

    Each transfer's bytes are attributed to the window containing its
    arrival.  Returns ``[(window_center_seconds, bytes_per_second), ...]``.
    """
    recs = _transfers(tracer)
    if not recs:
        raise ValueError("trace contains no fabric transfers")
    if nbins < 1:
        raise ValueError(f"nbins must be >= 1, got {nbins}")
    arrivals = np.array([r.detail["arrival"] for r in recs], dtype=float)
    sizes = np.array([r.detail["nbytes"] for r in recs], dtype=float)
    t_end = float(arrivals.max())
    if t_end <= 0:
        return [(0.0, 0.0)]
    edges = np.linspace(0.0, t_end, nbins + 1)
    width = edges[1] - edges[0]
    sums, _ = np.histogram(arrivals, bins=edges, weights=sizes)
    centers = (edges[:-1] + edges[1:]) / 2
    return [(float(c), float(s / width)) for c, s in zip(centers, sums)]


def rank_activity(tracer: Tracer) -> dict[int, dict[str, int]]:
    """Per-rank counts of sends, puts, arrivals and atomics.

    Communication skew — some ranks carrying most of the traffic — shows up
    directly; the SpTRSV diagonal owners vs pure update ranks is a classic
    example.
    """
    out: dict[int, dict[str, int]] = {}
    for rec in tracer:
        if rec.rank < 0:
            continue
        bucket = out.setdefault(
            rec.rank, {"send": 0, "put": 0, "put_signal": 0, "arrive": 0, "cas": 0}
        )
        if rec.kind in bucket:
            bucket[rec.kind] += 1
    return out


def comm_matrix(tracer: Tracer, nranks: int) -> np.ndarray:
    """Bytes moved rank-to-rank, from the send/put/put_signal records.

    ``matrix[src, dst]`` sums payload bytes.  Fabric-level records carry
    endpoint names rather than ranks, so this uses the runtime-level
    events, which know both parties.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    m = np.zeros((nranks, nranks))
    for rec in tracer:
        if rec.kind == "send":
            m[rec.rank, rec.detail["dst"]] += rec.detail["nbytes"]
        elif rec.kind in ("put", "put_signal"):
            m[rec.rank, rec.detail["target"]] += rec.detail["nbytes"]
    return m


def ascii_timeline(
    timeline: list[tuple[float, float]], *, width: int = 60, label: str = "GB/s"
) -> str:
    """Render a bandwidth timeline as a horizontal bar chart."""
    if not timeline:
        raise ValueError("empty timeline")
    peak = max(v for _, v in timeline) or 1.0
    lines = [f"achieved {label} over time (peak {peak / 1e9:.2f} GB/s):"]
    for t, v in timeline:
        bar = "#" * int(round(v / peak * width))
        lines.append(f"  {t * 1e6:9.2f} us |{bar:<{width}}| {v / 1e9:7.2f}")
    return "\n".join(lines)
