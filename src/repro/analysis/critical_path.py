"""Critical-path analysis of the SpTRSV supernodal DAG.

Before running a solve, :func:`analyze_dag` answers the questions the
paper's Fig. 8 discussion turns on: how deep is the dependency chain, how
much parallel work exists per level, and what is the latency-bound lower
bound on the distributed solve time for a given per-message latency —
i.e. *can* this matrix scale on a given interconnect at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.sptrsv.matrix import SupernodalMatrix

__all__ = ["DagProfile", "analyze_dag", "latency_lower_bound"]


@dataclass(frozen=True)
class DagProfile:
    """Structure of a supernodal dependency DAG."""

    n_supernodes: int
    critical_path: int  # longest chain (levels)
    levels: tuple[int, ...]  # supernodes solvable per level
    mean_parallelism: float  # n_supernodes / critical_path
    max_parallelism: int
    serial_fraction: float  # levels with exactly one ready supernode

    def summary(self) -> str:
        return (
            f"{self.n_supernodes} supernodes, critical path "
            f"{self.critical_path}, mean parallelism "
            f"{self.mean_parallelism:.1f}, max {self.max_parallelism}, "
            f"{self.serial_fraction * 100:.0f}% serial levels"
        )


def analyze_dag(matrix: SupernodalMatrix) -> DagProfile:
    """Level-schedule the DAG and profile its parallelism."""
    n = matrix.n_supernodes
    level = [0] * n
    for J, I in matrix.dag_edges():
        level[I] = max(level[I], level[J] + 1)
    depth = max(level) + 1 if n else 0
    counts = np.bincount(level, minlength=depth)
    return DagProfile(
        n_supernodes=n,
        critical_path=depth,
        levels=tuple(int(c) for c in counts),
        mean_parallelism=n / depth if depth else 0.0,
        max_parallelism=int(counts.max()) if depth else 0,
        serial_fraction=float(np.mean(counts == 1)) if depth else 0.0,
    )


def latency_lower_bound(
    matrix: SupernodalMatrix,
    *,
    per_message_latency: float,
    compute_time_total: float = 0.0,
    nranks: int = 1,
) -> float:
    """A lower bound on the distributed solve makespan.

    Every level boundary on the critical path crosses at least one message
    once the matrix is distributed (nranks > 1), so::

        T >= (critical_path - 1) * per_message_latency
             + compute_time_total / nranks

    This is the quantity behind the paper's observation that SpTRSV
    "prefers a lower-latency interconnect": with the paper's 126K matrix
    the chain is hundreds of levels deep, and 5 us vs 4 us per level is
    the whole Perlmutter-vs-Summit story.
    """
    if per_message_latency < 0 or compute_time_total < 0:
        raise ValueError("latency/compute must be non-negative")
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    profile = analyze_dag(matrix)
    chain = max(profile.critical_path - 1, 0)
    comm = chain * per_message_latency if nranks > 1 else 0.0
    return comm + compute_time_total / nranks
