"""Post-run analysis: trace statistics, timelines, DAG critical paths."""

from repro.analysis.critical_path import (
    DagProfile,
    analyze_dag,
    latency_lower_bound,
)
from repro.analysis.traces import (
    MessageStats,
    ascii_timeline,
    bandwidth_timeline,
    comm_matrix,
    from_records,
    load_jsonl,
    message_stats,
    rank_activity,
)

__all__ = [
    "DagProfile",
    "analyze_dag",
    "latency_lower_bound",
    "MessageStats",
    "ascii_timeline",
    "bandwidth_timeline",
    "comm_matrix",
    "from_records",
    "load_jsonl",
    "message_stats",
    "rank_activity",
]
