"""Queuing primitives built on the event engine.

:class:`Resource` models a server with finite capacity and a FIFO queue —
used for NIC injection ports and shared links (contention shows up as queue
wait).  :class:`Store` is an unbounded FIFO message mailbox — the substrate
under the MPI matching engine.  :class:`Pipe` is a convenience latency/`
bandwidth stage used in unit tests.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.event import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Resource", "Store", "Pipe"]


class Resource:
    """A server with ``capacity`` concurrent slots and a FIFO wait queue.

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot and wakes the next waiter.  The common
    pattern inside a process::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._queue:
            # Hand the slot directly to the next waiter; in_use stays constant.
            self._queue.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with event-based ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the next
    item — immediately if one is queued, else when one arrives.  Waiters are
    served in FIFO order.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list[Any]:
        """Non-destructive snapshot of queued items (for tracing/tests)."""
        return list(self._items)


class Pipe:
    """A fixed-latency, fixed-bandwidth stage: ``send`` delivers after
    ``latency + nbytes / bandwidth`` into an internal :class:`Store`.

    Transfers are *not* serialised (infinite parallelism) — use a
    :class:`Resource` in front for serialisation.  Mainly a test fixture and
    a reference behaviour for the full link model in ``repro.net.link``.
    """

    def __init__(self, sim: "Simulator", latency: float, bandwidth: float):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.store = Store(sim)

    def send(self, item: Any, nbytes: float = 0.0) -> Event:
        """Inject; returns the delivery event (also enqueued into .store)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        delay = self.latency + nbytes / self.bandwidth
        done = self.sim.timeout(delay, value=item)
        done.add_callback(lambda ev: self.store.put(ev.value))
        return done

    def recv(self) -> Event:
        return self.store.get()
