"""The discrete-event simulation core.

:class:`Simulator` owns virtual time and an event heap.  All timing in the
reproduction — link traversal, MPI op overheads, GPU kernel slices — is
expressed as events scheduled here, so a whole multi-rank run is
deterministic and produces *virtual* seconds, independent of host speed.

Determinism contract: two runs with the same program and the same RNG seeds
produce identical event orderings.  Ties in time are broken by insertion
sequence number.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any

from repro.sim.event import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Event heap + virtual clock.

    Usage::

        sim = Simulator()
        sim.process(my_generator_fn(sim))
        sim.run()
        print(sim.now)
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self.event_count: int = 0  # processed events, for instrumentation

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction helpers ------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def at_time(self, when: float, value: Any = None) -> Event:
        """An event that fires at the *absolute* simulated time ``when``.

        Unlike ``timeout(when - now)``, the event is enqueued at exactly
        ``when`` — ``now + (when - now)`` can differ from ``when`` by one
        ulp, which matters to the bulk-transfer engine
        (:mod:`repro.perf`): its batch completions must land on the very
        float the scalar path's event chain would have produced.
        """
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self._schedule(ev, at=when)
        return ev

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Launch a generator as a simulation process."""
        return Process(self, generator, name=name)

    # -- scheduling ------------------------------------------------------------

    def _schedule(
        self, event: Event, delay: float = 0.0, *, at: float | None = None
    ) -> None:
        if at is None:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            when = self._now + delay
        else:
            if at < self._now:
                raise SimulationError(
                    f"cannot schedule into the past (at={at} < now={self._now})"
                )
            when = at
        heapq.heappush(self._heap, (when, self._seq, event))
        self._seq += 1

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event. Raises IndexError if none remain."""
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self.event_count += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(
        self, until: float | Event | None = None, *, max_events: int | None = None
    ) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be:

        * ``None`` — run to quiescence;
        * a float — advance the clock to exactly that time, processing every
          event scheduled before it;
        * an :class:`Event` — run until that event is processed and return its
          value (raising if it failed).

        ``max_events`` bounds the number of events processed by *this call*
        — a guard against livelocked programs (e.g. two processes waking
        each other forever); exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        if max_events is not None and max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {max_events}")
        budget_start = self.event_count
        self._running = True

        def check_budget() -> None:
            if (
                max_events is not None
                and self.event_count - budget_start >= max_events
            ):
                raise SimulationError(
                    f"event budget exhausted: processed {max_events} events "
                    f"without completing (livelock? t={self._now:.3e}s)"
                )

        try:
            if until is None:
                while self._heap:
                    check_budget()
                    self.step()
                return None
            if isinstance(until, Event):
                sentinel = until
                if sentinel.sim is not self:
                    raise SimulationError("'until' event belongs to another simulator")
                done: list[Any] = []

                def _mark(ev: Event) -> None:
                    done.append(ev)

                if sentinel.processed:
                    done.append(sentinel)
                else:
                    sentinel.add_callback(_mark)
                while not done:
                    if not self._heap:
                        raise SimulationError(
                            "simulation ran to quiescence before 'until' event fired "
                            "(deadlock: a process is waiting for a message that will "
                            "never arrive?)"
                        )
                    check_budget()
                    self.step()
                if not sentinel.ok:
                    raise sentinel.value
                return sentinel.value
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"cannot run until {deadline} < current time {self._now}"
                )
            while self._heap and self._heap[0][0] <= deadline:
                check_budget()
                self.step()
            self._now = deadline
            return None
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6e}s queued={len(self._heap)}>"
