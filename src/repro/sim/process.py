"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.sim.event.Event`
objects; the process suspends until the yielded event fires and resumes with
the event's value (``value = yield ev``).  An MPI rank, a GPU thread block,
and a NIC injector are all processes.

A :class:`Process` is itself an event: it succeeds with the generator's
return value, so processes can wait on each other (fork/join).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.sim.event import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wrap a generator as a schedulable process.

    The first resumption is scheduled immediately (at the current simulated
    time) when the process is created.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(
        self, sim: "Simulator", generator: Generator, name: str | None = None
    ):
        if not isinstance(generator, Generator):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The target event the process was waiting on is abandoned (its
        callback is disarmed); the process decides how to recover.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        exc = Interrupt(cause)
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        trigger = Event(self.sim)
        trigger.callbacks.append(lambda ev: self._step(exc, throw=True))
        trigger.succeed()

    # -- internal --------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event.defuse()
            self._step(event.value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process as a failure.
            self._target = None
            self.fail(exc)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.generator.close()
            self._target = None
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must "
                    "yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self._target = None
            self.fail(SimulationError("process yielded an event from another simulator"))
            return
        self._target = target
        if target.processed:
            # Already-fired event: resume on the next engine step.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
        else:
            target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
