"""Discrete-event simulation engine.

The engine provides virtual time (:class:`Simulator`), one-shot coordination
points (:class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`),
generator-based concurrency (:class:`Process`), queueing primitives
(:class:`Resource`, :class:`Store`, :class:`Pipe`), reproducible randomness
(:class:`RngFactory`) and structured tracing (:class:`Tracer`).

All of ``repro.net``, ``repro.comm`` and the workloads are built on this
package and nothing else; there is no hidden wall-clock anywhere.
"""

from repro.sim.engine import Simulator
from repro.sim.event import AllOf, AnyOf, Event, SimulationError, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Pipe, Resource, Store
from repro.sim.rng import RngFactory
from repro.sim.trace import ListSink, NullSink, NullTracer, TraceRecord, Tracer, TraceSink

__all__ = [
    "ListSink",
    "NullSink",
    "TraceSink",
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "Pipe",
    "RngFactory",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
