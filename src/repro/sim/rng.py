"""Deterministic, stream-split random number generation.

Every stochastic element of a simulation (workload key streams, jitter,
matrix generation) draws from a named child stream of one root seed, so runs
are reproducible and adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory"]


class RngFactory:
    """Produce independent ``numpy.random.Generator`` streams by name.

    The stream for a name is a pure function of ``(seed, name)``: stable
    across runs and across machines, and insensitive to the order in which
    streams are requested.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """A generator whose state depends only on (seed, name)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        # 4 x 64-bit words of entropy from the digest seeds the bit generator.
        words = np.frombuffer(digest, dtype=np.uint64)[:4]
        return np.random.Generator(np.random.PCG64(words))

    def child(self, name: str) -> "RngFactory":
        """A derived factory, for namespacing per-component streams."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "little"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self.seed})"
