"""Events: the unit of coordination in the discrete-event engine.

The design follows the classic process-interaction style (as in SimPy, but
self-contained): an :class:`Event` starts *untriggered*; calling
:meth:`Event.succeed` or :meth:`Event.fail` schedules it for processing, at
which point the engine invokes its callbacks.  Processes (see
``repro.sim.process``) suspend on events by ``yield``-ing them.

Composite events (:class:`AllOf`, :class:`AnyOf`) let a process wait for a
set of messages — the building block for ``MPI_Waitall`` and
``nvshmem_wait_until_any`` in the communication layers.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for violations of engine invariants (double-trigger, etc.)."""


_PENDING = object()  # sentinel: event value not yet set


class Event:
    """A one-shot occurrence at a point in simulated time.

    State machine: *untriggered* -> (*succeed* | *fail*) -> *processed*.
    Callbacks registered before processing run exactly once, in registration
    order, when the engine pops the event off its queue.  Callbacks added
    after processing raise: by then the moment has passed.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered; 'ok' is undefined")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception. Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered; value is undefined")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Mark the event successful; callbacks run after ``delay`` sim-time."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, *, delay: float = 0.0) -> "Event":
        """Mark the event failed; the exception propagates into waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    def defuse(self) -> None:
        """Suppress the 'unhandled failed event' check for this event."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError("cannot add callback to a processed event")
        self.callbacks.append(fn)

    # -- engine hook ---------------------------------------------------------

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks is None:
            raise SimulationError(f"event {self!r} processed twice")
        for fn in callbacks:
            fn(self)
        if self._ok is False and not self._defused and not callbacks:
            # A failed event nobody was waiting on: surface it rather than
            # silently dropping the error.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds automatically after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for AllOf/AnyOf: resolves from the states of child events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self.events:
            # Vacuously satisfied.
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.add_callback(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when *all* child events have succeeded (``MPI_Waitall``)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(_Condition):
    """Succeeds when *any* child event has succeeded (``MPI_Waitany``)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1
