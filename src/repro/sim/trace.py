"""Event tracing: a structured record of what happened during a run.

The communication layers emit :class:`TraceRecord` rows ("rank 3 injected a
4 KiB put at t=1.2e-5") into a :class:`Tracer`.  The experiment harness uses
traces to compute the paper's instrumented quantities — messages per
synchronization, words per message, achieved bandwidth — and the tests use
them to assert ordering invariants (a signal never overtakes its data, etc.).

Storage is pluggable: a :class:`Tracer` writes records to a *sink*.  The
default :class:`ListSink` keeps everything in memory (the original
behaviour); ``repro.obs.sinks`` adds a bounded ring buffer and a streaming
JSONL file sink for runs — like the hashtable workload at 1e6 msg/sync —
where an unbounded list would not survive.  A sink only needs ``append``,
``__len__``, ``__iter__``, ``clear`` and a ``records`` sequence view.

Hot paths must guard emission with ``if tracer.enabled:`` so the kwargs
dict for ``emit`` is never built when tracing is off (the
:class:`NullTracer` default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "TraceRecord",
    "TraceSink",
    "ListSink",
    "NullSink",
    "Tracer",
    "NullTracer",
]

# Payload-bearing record kinds across all three runtimes; the default scope
# of :meth:`Tracer.total_bytes` so one-sided/SHMEM runs are not silently
# summed as zero.
DATA_KINDS: tuple[str, ...] = ("send", "put", "put_signal")


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        t: simulated time (seconds).
        kind: category, e.g. ``"send"``, ``"put"``, ``"signal"``, ``"sync"``.
        rank: acting rank id (or -1 for fabric-level records).
        detail: free-form payload (message size, peer, op name, ...).
    """

    t: float
    kind: str
    rank: int
    detail: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class TraceSink(Protocol):
    """Destination for trace records (duck-typed; see module docstring)."""

    records: Sequence[TraceRecord]

    def append(self, record: TraceRecord) -> None: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[TraceRecord]: ...

    def clear(self) -> None: ...


class ListSink:
    """Unbounded in-memory sink: the classic append-only trace list."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()


class NullSink:
    """Shared immutable sink that drops everything (``NullTracer`` storage)."""

    __slots__ = ()

    records: tuple[TraceRecord, ...] = ()

    def append(self, record: TraceRecord) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def clear(self) -> None:
        pass


#: Module-level singleton: every ``NullTracer`` shares this, so a disabled
#: tracer carries no mutable per-instance record storage at all.
NULL_SINK = NullSink()


class Tracer:
    """Append-only trace with filtered iteration helpers.

    ``sink`` chooses where records go; the default is an in-memory
    :class:`ListSink`.  ``tracer.records`` is always a sequence view of
    whatever the sink currently retains (a ring sink retains only the last
    N records; a streaming file sink retains nothing — load it back with
    :func:`repro.analysis.traces.load_jsonl`).
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink: TraceSink = sink if sink is not None else ListSink()
        self.enabled = True

    @property
    def records(self) -> Sequence[TraceRecord]:
        return self.sink.records

    def emit(self, t: float, kind: str, rank: int, **detail: Any) -> None:
        if self.enabled:
            self.sink.append(TraceRecord(t=t, kind=kind, rank=rank, detail=detail))

    def __len__(self) -> int:
        return len(self.sink)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.sink)

    def filter(
        self,
        kind: str | None = None,
        rank: int | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        out: Iterable[TraceRecord] = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if rank is not None:
            out = [r for r in out if r.rank == rank]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    def count(self, kind: str) -> int:
        return sum(1 for r in self if r.kind == kind)

    def total_bytes(self, kinds: str | Sequence[str] = DATA_KINDS) -> float:
        """Sum the ``nbytes`` detail over records whose kind is in ``kinds``.

        ``kinds`` accepts one kind (``"send"``) or a sequence of kinds; the
        default covers every payload-bearing kind across the three runtimes
        (``send``, ``put``, ``put_signal``) so a one-sided trace is not
        silently summed as zero.
        """
        if isinstance(kinds, str):
            kinds = (kinds,)
        wanted = frozenset(kinds)
        return float(
            sum(r.detail.get("nbytes", 0) for r in self if r.kind in wanted)
        )

    def clear(self) -> None:
        self.sink.clear()


class NullTracer(Tracer):
    """A tracer that drops everything — zero overhead for large runs.

    Shares the module-level :data:`NULL_SINK`, so it owns no mutable record
    storage; ``emit`` is a no-op and ``enabled`` is ``False`` so guarded
    call sites skip building the record kwargs entirely.
    """

    def __init__(self) -> None:
        super().__init__(sink=NULL_SINK)
        self.enabled = False

    def emit(self, t: float, kind: str, rank: int, **detail: Any) -> None:
        pass
