"""Event tracing: a structured record of what happened during a run.

The communication layers emit :class:`TraceRecord` rows ("rank 3 injected a
4 KiB put at t=1.2e-5") into a :class:`Tracer`.  The experiment harness uses
traces to compute the paper's instrumented quantities — messages per
synchronization, words per message, achieved bandwidth — and the tests use
them to assert ordering invariants (a signal never overtakes its data, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import Any

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        t: simulated time (seconds).
        kind: category, e.g. ``"send"``, ``"put"``, ``"signal"``, ``"sync"``.
        rank: acting rank id (or -1 for fabric-level records).
        detail: free-form payload (message size, peer, op name, ...).
    """

    t: float
    kind: str
    rank: int
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only trace with filtered iteration helpers."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.enabled = True

    def emit(self, t: float, kind: str, rank: int, **detail: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(t=t, kind=kind, rank=rank, detail=detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(
        self,
        kind: str | None = None,
        rank: int | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if rank is not None:
            out = [r for r in out if r.rank == rank]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def total_bytes(self, kind: str = "send") -> float:
        """Sum the ``nbytes`` detail over records of ``kind``."""
        return float(
            sum(r.detail.get("nbytes", 0) for r in self.records if r.kind == kind)
        )

    def clear(self) -> None:
        self.records.clear()


class NullTracer(Tracer):
    """A tracer that drops everything — zero overhead for large runs."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def emit(self, t: float, kind: str, rank: int, **detail: Any) -> None:
        pass
