"""repro.api — the stable, composed entry point.

The library's power features are *ambient* context managers — an
:func:`repro.obs.observe` session, a :func:`repro.faults.inject` scope, a
:func:`repro.sweep.execution` config — because experiment runners keep
zero-argument signatures.  Composing them by hand means three nested
``with`` blocks in the right order.  :class:`Session` is that composition
as one object::

    import repro

    plan = repro.faults.FaultPlan.uniform(loss=0.01, seed=7)
    with repro.Session(machine="perlmutter-gpu", backend=repro.SHMEM,
                       faults=plan, obs=True, jobs=4) as s:
        report = s.run_experiment("fig09")
        flood = s.run_flood(nbytes=4096, msgs_per_sync=64)
    print(s.obs.snapshot())      # metrics + span timings
    print(s.fault_stats())       # drops / retransmits / ...

Everything here is re-exported from the top-level :mod:`repro` package:
``Session``, :func:`run_experiment`, :func:`run_sweep`,
:func:`get_machine` and the backend name constants.  See ``docs/API.md``
for the stability and deprecation policy.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any

from repro import faults as _faults
from repro import ir as _ir
from repro import obs as _obs
from repro import sweep as _sweep
from repro.experiments import ALL_EXPERIMENTS
from repro.machines import MACHINES, PROJECTIONS, MachineModel, get_machine
from repro.transport import (
    ONE_SIDED,
    ONE_SIDED_HW,
    SHMEM,
    STREAM_TRIGGERED,
    TWO_SIDED,
    CapsPredicate,
    backend_names,
    capabilities,
    require,
)

__all__ = [
    "Session",
    "run_experiment",
    "experiment_names",
    "get_machine",
    "machine_names",
    "backend_names",
    "capabilities",
    "require",
    "TWO_SIDED",
    "ONE_SIDED",
    "SHMEM",
    "ONE_SIDED_HW",
    "STREAM_TRIGGERED",
]


def experiment_names() -> tuple[str, ...]:
    """Names accepted by :func:`run_experiment` (the paper's figures/tables)."""
    return tuple(ALL_EXPERIMENTS)


def machine_names() -> tuple[str, ...]:
    """Names accepted by :func:`get_machine`: measured machines + projections."""
    return tuple(MACHINES) + tuple(PROJECTIONS)


def run_experiment(name: str, **kwargs: Any):
    """Run one named experiment (``fig01``..``table2``...) and return its
    :class:`~repro.experiments.report.ExperimentReport`.

    Honours whatever ambient scopes are active — run it inside a
    :class:`Session` to get observability, faults and parallelism.
    """
    try:
        runner = ALL_EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; valid: {', '.join(ALL_EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)


class Session:
    """One experiment session: machine + backend defaults, ambient scopes.

    Args:
        machine: machine model name (``"perlmutter-gpu"``, ...) or a
            pre-built :class:`~repro.machines.base.MachineModel`; resolved
            eagerly so typos fail at construction.
        backend: default runtime backend for the convenience runners — a
            registered name (:data:`TWO_SIDED` / :data:`ONE_SIDED` /
            :data:`SHMEM` / :data:`ONE_SIDED_HW` /
            :data:`STREAM_TRIGGERED`) or a capability predicate built
            with :func:`repro.transport.require`
            (``backend=require(gpu_initiated=True)`` resolves to the
            first qualifying backend; no qualifier raises an error
            listing the full capability table).  Validated eagerly.
        faults: a :class:`~repro.faults.FaultPlan` installed via
            :func:`repro.faults.inject` for the session's duration.
        obs: ``True`` for a fresh metrics+spans session, or a pre-built
            :class:`~repro.obs.Obs` (e.g. with tracing on).
        jobs: sweep parallelism (installed via :func:`repro.sweep.execution`).
        cache: a :class:`~repro.sweep.ResultCache` (or a path for one) for
            sweep result caching.
        placement: default co-scheduling placement policy (``"packed"`` /
            ``"scattered"`` / ``"random"``) for clusters built via
            :meth:`cluster`, validated eagerly.
        passes: IR pass pipeline for every program lowered in the session
            (installed via :func:`repro.ir.passes`).  ``True`` enables the
            default pipeline (coalesce, overlap, sync-elide); a sequence of
            pass names or a :class:`~repro.ir.PassPipeline` selects
            explicitly; ``False`` (the default) leaves every pass off —
            lowering is then byte-identical to the pre-IR runners.
            Reports for programs lowered under the session are collected
            in :attr:`ir_reports`; see :meth:`explain_ir`.

    The scopes nest obs -> faults -> passes -> execution, so worker
    processes and fault draws happen *inside* the observed region, exactly
    as the hand-written ``with`` blocks would.
    """

    def __init__(
        self,
        *,
        machine: str | MachineModel | None = None,
        backend: str | CapsPredicate | None = None,
        faults: "_faults.FaultPlan | None" = None,
        obs: "bool | _obs.Obs" = False,
        jobs: int = 1,
        cache: "_sweep.ResultCache | str | None" = None,
        passes=False,
        placement: str = "packed",
    ):
        from repro.cluster import PLACEMENTS

        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; valid: {PLACEMENTS}"
            )
        self.placement = placement
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        if isinstance(backend, CapsPredicate):
            # Resolve eagerly: an unsatisfiable predicate fails at
            # construction with the full capability table.
            backend = backend.resolve()
        elif backend is not None and backend not in backend_names():
            raise ValueError(
                f"unknown backend {backend!r}; valid: {', '.join(backend_names())}"
            )
        self.backend = backend
        self.fault_plan = faults
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = _sweep.ResultCache(cache) if isinstance(cache, str) else cache
        self.obs: _obs.Obs | None = (
            obs if isinstance(obs, _obs.Obs) else (_obs.Obs() if obs else None)
        )
        # Validate eagerly (unknown pass names fail at construction).
        self.passes = _ir.build_pipeline(passes)
        self.ir_reports: list[_ir.IRReport] = []
        self.fault_scope: _faults.FaultScope | None = None
        self.execution: _sweep.ExecutionConfig | None = None
        self._stack: ExitStack | None = None

    # -- scope management ----------------------------------------------

    def __enter__(self) -> "Session":
        if self._stack is not None:
            raise RuntimeError("Session is not re-entrant")
        self._stack = ExitStack()
        try:
            if self.obs is not None:
                self._stack.enter_context(_obs.observe(self.obs))
            if self.fault_plan is not None:
                self.fault_scope = self._stack.enter_context(
                    _faults.inject(self.fault_plan)
                )
            if self.passes.enabled:
                self._stack.enter_context(_ir.passes(self.passes))
            self.ir_reports = self._stack.enter_context(_ir.collect())
            self.execution = self._stack.enter_context(
                _sweep.execution(jobs=self.jobs, cache=self.cache)
            )
        except BaseException:
            self._stack.close()
            self._stack = None
            raise
        return self

    def __exit__(self, *exc) -> None:
        stack, self._stack = self._stack, None
        self.execution = None
        if stack is not None:
            stack.close()

    def fault_stats(self) -> dict[str, int]:
        """Aggregate fault counters (empty when no plan was injected)."""
        return self.fault_scope.stats() if self.fault_scope is not None else {}

    def explain_ir(self) -> str:
        """Pass reports for every IR program lowered under this session —
        one deduplicated block per distinct (program, target, rewrites)
        shape; see :func:`repro.ir.explain_all`."""
        if not self.ir_reports:
            return "(no IR programs lowered in this session)"
        return _ir.explain_all(self.ir_reports)

    # -- conveniences ---------------------------------------------------

    def _machine(self) -> MachineModel:
        if self.machine is None:
            raise ValueError("Session has no machine= configured")
        return self.machine

    def _backend(self) -> str:
        if self.backend is None:
            raise ValueError("Session has no backend= configured")
        return self.backend

    def run_experiment(self, name: str, **kwargs: Any):
        """:func:`run_experiment` under this session's scopes."""
        return run_experiment(name, **kwargs)

    def run_sweep(self, spec, **kwargs):
        """:func:`repro.sweep.run_sweep` under this session's scopes."""
        return _sweep.run_sweep(spec, **kwargs)

    def run_flood(self, *, nbytes: int, msgs_per_sync: int, **kwargs: Any):
        """One flood point on the session's machine/backend."""
        from repro.workloads.flood import run_flood

        return run_flood(
            self._machine(), self._backend(), nbytes, msgs_per_sync, **kwargs
        )

    def run_cas_flood(self, **kwargs: Any):
        """One CAS-flood measurement on the session's machine/backend."""
        from repro.workloads.flood import run_cas_flood

        return run_cas_flood(self._machine(), self._backend(), **kwargs)

    def run_collective(self, coll: str, *, nranks: int, **kwargs: Any):
        """One collective (:func:`repro.collectives.run_collective`) on
        the session's machine/backend."""
        from repro.collectives import run_collective

        return run_collective(
            self._machine(), self._backend(), coll, nranks=nranks, **kwargs
        )

    def explain_collective(self, coll: str, *, nranks: int, **kwargs: Any):
        """The algorithm selector's verdict + cost table (model only)."""
        from repro.collectives import explain_collective

        return explain_collective(
            self._machine(), self._backend(), coll, nranks=nranks, **kwargs
        )

    def run_training_step(self, *, nranks: int, grad_bytes: float, **kwargs: Any):
        """A data-parallel training step (ML traffic; see repro.workloads.ml)."""
        from repro.workloads.ml import run_training_step

        return run_training_step(
            self._machine(), self._backend(), nranks=nranks,
            grad_bytes=grad_bytes, **kwargs,
        )

    def run_moe_dispatch(self, *, nranks: int, **kwargs: Any):
        """An expert-parallel MoE layer (alltoall dispatch + combine)."""
        from repro.workloads.ml import run_moe_dispatch

        return run_moe_dispatch(
            self._machine(), self._backend(), nranks=nranks, **kwargs
        )

    def cluster(self, machine: "str | MachineModel | None" = None, **kwargs: Any):
        """A :class:`repro.cluster.Cluster` on the session's machine (or an
        explicit one), defaulting to the session's ``placement`` policy.
        Accepts the Cluster keywords (``routing=``, ``congestion=``,
        ``seed=``, ``faults=``)."""
        from repro.cluster import Cluster

        if machine is None:
            machine = self._machine()
        kwargs.setdefault("placement", self.placement)
        return Cluster(machine, **kwargs)

    def run_recoverable_training(
        self, spec=None, *, nranks: int, cluster=None, **kwargs: Any
    ):
        """A checkpoint/restart training job
        (:func:`repro.cluster.run_recoverable_training`) on ``cluster``,
        or on a fresh :meth:`cluster` of the session's machine — which
        picks up the session's fault plan, so hard faults configured via
        ``Session(faults=...)`` fail and recover the job."""
        from repro.cluster import run_recoverable_training

        if cluster is None:
            cluster = self.cluster()
        return run_recoverable_training(cluster, spec, nranks=nranks, **kwargs)

    def run_kv_transfer(self, *, nranks: int, **kwargs: Any):
        """A prefill -> KV-cache hand-off -> decode pipeline."""
        from repro.workloads.ml import run_kv_transfer

        return run_kv_transfer(
            self._machine(), self._backend(), nranks=nranks, **kwargs
        )

    def __repr__(self) -> str:
        bits = []
        if self.machine is not None:
            bits.append(f"machine={self.machine.name!r}")
        if self.backend is not None:
            bits.append(f"backend={self.backend!r}")
        if self.fault_plan is not None:
            bits.append("faults=...")
        if self.obs is not None:
            bits.append("obs=on")
        if self.passes.enabled:
            bits.append(f"passes={','.join(self.passes.names())}")
        bits.append(f"jobs={self.jobs}")
        state = "active" if self._stack is not None else "idle"
        return f"<Session {' '.join(bits)} [{state}]>"
