"""Small statistics helpers used by the experiment harness and roofline fits."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean", "percentile", "speedup"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample of measurements."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(samples: Sequence[float]) -> Summary:
    """Summarise a non-empty sequence of measurements."""
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    arr = np.asarray(samples, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples contain non-finite values")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values (speedup aggregation)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile(values: Sequence[float], q: float) -> float:
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


def speedup(baseline: float, contender: float) -> float:
    """``baseline / contender``: >1 means the contender is faster."""
    if baseline <= 0 or contender <= 0:
        raise ValueError("speedup requires positive times")
    return baseline / contender
