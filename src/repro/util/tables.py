"""Plain-text table rendering for experiment reports.

Every benchmark in ``benchmarks/`` prints its result as an ASCII table in the
same row/column arrangement as the corresponding table or figure legend in
the paper, so ``pytest benchmarks/ --benchmark-only`` output can be compared
against the paper side by side without plotting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table", "format_kv", "Table"]


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncol = len(headers)
    for r in str_rows:
        if len(r) != ncol:
            raise ValueError(f"row has {len(r)} cells, expected {ncol}: {r}")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    lines.append(sep)
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value mapping as an aligned two-column block."""
    if not pairs:
        return title or ""
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    lines.extend(f"  {k.ljust(width)} : {_cell(v)}" for k, v in pairs.items())
    return "\n".join(lines)


class Table:
    """Incrementally built table: ``add_row`` then ``render``/``rows``."""

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.headers = list(headers)
        self.title = title
        self._rows: list[list[Any]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}: {cells}"
            )
        self._rows.append(list(cells))

    @property
    def rows(self) -> list[list[Any]]:
        return [list(r) for r in self._rows]

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [r[idx] for r in self._rows]

    def render(self) -> str:
        return format_table(self.headers, self._rows, title=self.title)

    def __len__(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return self.render()
