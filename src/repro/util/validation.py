"""Argument-validation helpers shared across the library.

These raise early, with messages that name the offending parameter, so that a
mis-configured machine model or workload fails at construction time rather
than deep inside a simulation run.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_power_of_two",
    "check_rank",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and finite."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and finite."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_in_range(
    name: str, value: float, lo: float, hi: float, *, inclusive: bool = True
) -> float:
    """Require ``lo <= value <= hi`` (or strict if ``inclusive=False``)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    return check_in_range(name, value, 0.0, 1.0)


def check_power_of_two(name: str, value: int) -> int:
    """Require an integral power of two (used for grid/process decompositions)."""
    if not isinstance(value, int) or value < 1 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_rank(name: str, rank: Any, size: int) -> int:
    """Require a valid rank id in ``[0, size)``."""
    if not isinstance(rank, int) or isinstance(rank, bool):
        raise TypeError(f"{name} must be an int rank id, got {type(rank).__name__}")
    if not 0 <= rank < size:
        raise ValueError(f"{name}={rank} out of range for communicator size {size}")
    return rank
