"""Unit helpers for bytes, bandwidth, and time.

All simulator-internal quantities use SI base units: **seconds** for time and
**bytes** for data.  Bandwidths are bytes/second.  The helpers here exist so
that machine descriptions and reports can speak the paper's language
("36 GB/s/direction", "131 KB", "3.3 us") without sprinkling magic factors
through the code.

The paper (and vendor datasheets) use decimal giga (1 GB/s = 1e9 B/s) for link
bandwidths but power-of-two sizes for message sizes (2^16 bytes).  We keep the
two conventions distinct: :func:`GB` / :func:`GBps` are decimal while
:func:`KiB` / :func:`MiB` are binary.
"""

from __future__ import annotations

import math

__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "GBps",
    "MBps",
    "us",
    "ns",
    "ms",
    "fmt_bytes",
    "fmt_bw",
    "fmt_time",
    "parse_size",
]

# ---------------------------------------------------------------------------
# Constructors: value-in-unit -> base unit
# ---------------------------------------------------------------------------


def KB(x: float) -> float:
    """Decimal kilobytes to bytes."""
    return x * 1e3


def MB(x: float) -> float:
    """Decimal megabytes to bytes."""
    return x * 1e6


def GB(x: float) -> float:
    """Decimal gigabytes to bytes."""
    return x * 1e9


def KiB(x: float) -> float:
    """Binary kibibytes to bytes."""
    return x * 1024.0


def MiB(x: float) -> float:
    """Binary mebibytes to bytes."""
    return x * 1024.0**2


def GiB(x: float) -> float:
    """Binary gibibytes to bytes."""
    return x * 1024.0**3


def GBps(x: float) -> float:
    """GB/s to bytes/s (decimal, matching vendor link specs)."""
    return x * 1e9


def MBps(x: float) -> float:
    """MB/s to bytes/s."""
    return x * 1e6


def us(x: float) -> float:
    """Microseconds to seconds."""
    return x * 1e-6


def ns(x: float) -> float:
    """Nanoseconds to seconds."""
    return x * 1e-9


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return x * 1e-3


# ---------------------------------------------------------------------------
# Formatting: base unit -> human string
# ---------------------------------------------------------------------------

_BYTE_STEPS = [(1024.0**3, "GiB"), (1024.0**2, "MiB"), (1024.0, "KiB")]


def fmt_bytes(nbytes: float) -> str:
    """Render a byte count with a binary suffix (``131072 -> '128 KiB'``)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    for factor, suffix in _BYTE_STEPS:
        if nbytes >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)} {suffix}"
            return f"{value:.2f} {suffix}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)} B"
    return f"{nbytes:.2f} B"


def fmt_bw(bytes_per_s: float) -> str:
    """Render a bandwidth in decimal GB/s or MB/s (paper convention)."""
    if bytes_per_s < 0:
        raise ValueError(f"negative bandwidth: {bytes_per_s}")
    if bytes_per_s >= 1e9:
        return f"{bytes_per_s / 1e9:.2f} GB/s"
    if bytes_per_s >= 1e6:
        return f"{bytes_per_s / 1e6:.2f} MB/s"
    if bytes_per_s >= 1e3:
        return f"{bytes_per_s / 1e3:.2f} KB/s"
    return f"{bytes_per_s:.2f} B/s"


def fmt_time(seconds: float) -> str:
    """Render a duration at an appropriate scale (``3.3e-6 -> '3.30 us'``)."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.2f} ns"


_SIZE_SUFFIXES = {
    "b": 1.0,
    "kb": 1e3,
    "mb": 1e6,
    "gb": 1e9,
    "kib": 1024.0,
    "mib": 1024.0**2,
    "gib": 1024.0**3,
    "k": 1024.0,
    "m": 1024.0**2,
    "g": 1024.0**3,
}


def parse_size(text: str) -> int:
    """Parse a human size string (``'128KiB'``, ``'4 MB'``, ``'64'``) to bytes.

    Bare ``K``/``M``/``G`` suffixes are binary, matching common benchmark CLI
    conventions (the paper's "131KB" threshold is 2**17 = 128 KiB).
    """
    s = text.strip().lower()
    if not s:
        raise ValueError("empty size string")
    i = len(s)
    while i > 0 and not (s[i - 1].isdigit() or s[i - 1] == "."):
        i -= 1
    num, suffix = s[:i].strip(), s[i:].strip()
    if not num:
        raise ValueError(f"no numeric part in size string: {text!r}")
    if suffix and suffix not in _SIZE_SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    value = float(num) * (_SIZE_SUFFIXES[suffix] if suffix else 1.0)
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"invalid size: {text!r}")
    return int(round(value))
