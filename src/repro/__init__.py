"""repro: reproduction of "Evaluating the Performance of One-sided
Communication on CPUs and GPUs" (Ding, Haseeb, Groves, Williams; SC 2023).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.net` — LogGP links, topologies, fabric;
* :mod:`repro.machines` — Perlmutter / Frontier / Summit models;
* :mod:`repro.comm` — two-sided MPI, one-sided RMA, GPU SHMEM;
* :mod:`repro.roofline` — the Message Roofline model (the paper's core);
* :mod:`repro.collectives` — collective algorithms on the transport verbs;
* :mod:`repro.workloads` — Stencil, SpTRSV, HashTable, ML traffic;
* :mod:`repro.experiments` — per-figure/table experiment runners;
* :mod:`repro.api` — the stable :class:`Session` facade (re-exported
  here; see ``docs/API.md`` for the stability policy).
"""

from repro import collectives, faults, obs, perf, sweep
from repro._version import __version__
from repro.api import (
    ONE_SIDED,
    ONE_SIDED_HW,
    SHMEM,
    STREAM_TRIGGERED,
    TWO_SIDED,
    Session,
    backend_names,
    capabilities,
    experiment_names,
    get_machine,
    machine_names,
    require,
    run_experiment,
)
from repro.sweep import run_sweep

__all__ = [
    "__version__",
    "Session",
    "run_experiment",
    "run_sweep",
    "experiment_names",
    "get_machine",
    "machine_names",
    "backend_names",
    "capabilities",
    "require",
    "TWO_SIDED",
    "ONE_SIDED",
    "SHMEM",
    "ONE_SIDED_HW",
    "STREAM_TRIGGERED",
    "collectives",
    "faults",
    "obs",
    "perf",
    "sweep",
]
