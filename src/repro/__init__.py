"""repro: reproduction of "Evaluating the Performance of One-sided
Communication on CPUs and GPUs" (Ding, Haseeb, Groves, Williams; SC 2023).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.net` — LogGP links, topologies, fabric;
* :mod:`repro.machines` — Perlmutter / Frontier / Summit models;
* :mod:`repro.comm` — two-sided MPI, one-sided RMA, GPU SHMEM;
* :mod:`repro.roofline` — the Message Roofline model (the paper's core);
* :mod:`repro.workloads` — Stencil, SpTRSV, Distributed HashTable;
* :mod:`repro.experiments` — per-figure/table experiment runners.
"""

from repro._version import __version__

__all__ = ["__version__"]
