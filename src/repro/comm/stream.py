"""Stream-triggered, CPU-free communication (ROADMAP item 5).

The paper's frontier runtimes all keep a host thread in the loop: even
NVSHMEM's device-initiated verbs assume the host launched the kernel
that issues them, and one-sided MPI pays ``o_sync`` host overhead per
synchronisation.  PAPERS.md's "Demystifying NVSHMEM" and "Co-Design of a
CPU-Free MPI GPU Communication Abstraction" describe the next step:
communication ops *enqueued on ordered device streams* behind kernels,
initiated and completed entirely on the device.

This module is that execution model:

* :class:`Stream` — an ordered op queue.  Kernels and communication ops
  enqueue in program order; ``run()`` drives them in sequence on the
  simulated device, honouring stream ordering (an op starts only after
  its predecessor completes).
* **kernel+put fusion** — a ``put_signal`` enqueued directly behind a
  kernel is triggered by the kernel's completion (the NIC doorbell is
  rung from the last thread block), so its device issue cost is not paid
  separately.
* **host bypass** — no ``o_sync`` host term anywhere: waits are hardware
  signal waits (``wait_wakeup = 0`` in the derived profile) and there is
  no kernel-launch latency per iteration (persistent enqueue, vs
  ``GpuSpec.kernel_launch`` per kernel for host-driven execution).

Costs are *derived*, not calibrated: :func:`derive_stream_costs` builds
a :class:`~repro.machines.base.CommCosts` profile for any machine from
its existing host-driven profiles — the cheapest per-message issue cost
the hardware has demonstrated, plus a small device-initiation term
(:data:`STREAM_DEVICE_INITIATION`), with every host-side overhead field
zeroed.  By construction the stream profile's per-message cost never
exceeds the host-driven one-sided cost on the same machine.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.comm.shmem import ShmemContext
from repro.machines.base import CommCosts

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import MachineModel

__all__ = [
    "STREAM_DEVICE_INITIATION",
    "Stream",
    "StreamContext",
    "derive_stream_costs",
    "host_launch_overhead",
]

# Device-side cost (seconds) of triggering one enqueued communication op:
# the proxy-bypass doorbell write described in the CPU-free co-design
# paper — tens of nanoseconds, an order of magnitude under host-driven
# per-op software overheads.
STREAM_DEVICE_INITIATION = 5e-8


def derive_stream_costs(machine: "MachineModel") -> CommCosts:
    """Derive the ``stream_triggered`` cost profile from ``machine``.

    The per-message issue cost is the cheapest demonstrated issue path of
    any calibrated host profile (``put_signal``, ``put`` or ``isend``)
    plus :data:`STREAM_DEVICE_INITIATION`; all host-side fields —
    ``wait_wakeup``, ``poll_slot``, ``wait_poll``, ``flush``,
    ``sync_enter``, ``copy_per_byte`` — are zero (hardware signal waits,
    no host progress thread, no receive-path software copy).  Atomics
    take the cheapest calibrated initiator/target costs, also with the
    device-initiation term.
    """
    profiles = list(machine.runtimes.values())
    issue = [
        v
        for c in profiles
        for v in (c.put_signal, c.put, c.isend)
        if v > 0.0
    ]
    base_issue = min(issue) if issue else 0.0
    fetch = [c.fetch_op for c in profiles if c.fetch_op > 0.0]
    apply_ = [c.atomic_apply for c in profiles if c.atomic_apply > 0.0]
    per_op = base_issue + STREAM_DEVICE_INITIATION
    return CommCosts(
        put_signal=per_op,
        put=per_op,
        get=per_op,
        fetch_op=(min(fetch) if fetch else 0.0) + STREAM_DEVICE_INITIATION,
        atomic_apply=min(apply_) if apply_ else 0.0,
        # Device-initiated RDMA has no eager/rendezvous protocol switch;
        # keep the most permissive threshold so no rendezvous round trip
        # is ever charged.
        eager_threshold=max(c.eager_threshold for c in profiles),
    )


def host_launch_overhead(machine: "MachineModel", n_kernels: int) -> float:
    """Host-driven kernel-launch overhead stream execution removes.

    Host-driven GPU execution pays ``GpuSpec.kernel_launch`` once per
    launched kernel; stream-triggered execution enqueues the whole
    dependency chain up front (or runs a persistent kernel) and pays
    nothing.  Zero on CPU machines, where there is no launch to elide.
    """
    if machine.gpu is None:
        return 0.0
    return machine.gpu.kernel_launch * n_kernels


class StreamContext(ShmemContext):
    """A PE whose communication is enqueued on ordered device streams.

    The verb set is the NVSHMEM one (:class:`ShmemContext`): stream
    enqueue changes *when ops issue and what they cost*, not their
    semantics.  The context's cost profile is the derived
    ``stream_triggered`` table, so waits wake for free and ``quiet`` is a
    pure completion drain.
    """

    def __init__(self, job, rank: int):
        super().__init__(job, rank)
        self._fuse_next_put = False

    def stream(self) -> "Stream":
        """A new ordered op queue on this PE's device."""
        return Stream(self)

    def put_signal_nbi(self, *args, **kwargs) -> Generator:
        if not self._fuse_next_put:
            result = yield from super().put_signal_nbi(*args, **kwargs)
            return result
        # Kernel+put fusion: the preceding kernel's completion rings the
        # NIC doorbell, so the device issue cost is not paid again.
        self._fuse_next_put = False
        saved = self.costs
        self.costs = dataclasses.replace(saved, put_signal=0.0)
        try:
            result = yield from super().put_signal_nbi(*args, **kwargs)
        finally:
            self.costs = saved
        return result


class Stream:
    """An ordered device op queue: kernels and communication in sequence.

    Ops enqueue instantly (the host — or a device-side graph — builds the
    queue up front); :meth:`run` executes them in order on the simulated
    device.  Stream ordering is the only synchronisation: each op starts
    when its predecessor completes, which is exactly why the epoch-open
    fence is free on this backend (see ``SyncElidePass``).
    """

    def __init__(self, ctx: StreamContext):
        self.ctx = ctx
        self._ops: list[tuple] = []

    # -- enqueue (instant; order is the contract) -----------------------

    def enqueue_kernel(self, nbytes: float = 0.0, flops: float = 0.0) -> "Stream":
        """Enqueue a compute kernel (roofline-modelled device time)."""
        self._ops.append(("kernel", (nbytes, flops)))
        return self

    def enqueue_put_signal(self, data_win, target: int, **kwargs) -> "Stream":
        """Enqueue a device-initiated ``put_signal_nbi`` behind the
        queue's predecessors.  Directly behind a kernel it fuses: the
        kernel completion triggers it at zero extra device issue cost."""
        self._ops.append(("put_signal", (data_win, target, kwargs)))
        return self

    def enqueue_wait(self, signal_win, idxs, value: int = 1) -> "Stream":
        """Enqueue a hardware signal wait (``wait_until_all``)."""
        self._ops.append(("wait", (signal_win, list(idxs), value)))
        return self

    def enqueue_quiet(self) -> "Stream":
        """Enqueue a completion drain for all prior puts on this PE."""
        self._ops.append(("quiet", ()))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    # -- execute --------------------------------------------------------

    def run(self) -> Generator:
        """Drive the queue in order on the simulated device.

        Returns the number of kernel+put fusions that fired.
        """
        ctx = self.ctx
        ops, self._ops = self._ops, []
        fused = 0
        prev_kernel = False
        for kind, payload in ops:
            if kind == "kernel":
                nbytes, flops = payload
                yield from ctx.compute(nbytes, flops)
                prev_kernel = True
                continue
            if kind == "put_signal":
                data_win, target, kwargs = payload
                if prev_kernel:
                    ctx._fuse_next_put = True
                    fused += 1
                yield from ctx.put_signal_nbi(data_win, target, **kwargs)
            elif kind == "wait":
                signal_win, idxs, value = payload
                yield from ctx.wait_until_all(signal_win, idxs, value=value)
            elif kind == "quiet":
                yield from ctx.quiet()
            else:  # pragma: no cover - enqueue methods are the only writers
                raise ValueError(f"unknown stream op {kind!r}")
            prev_kernel = False
        return fused
