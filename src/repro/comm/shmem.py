"""GPU-initiated one-sided communication (NVSHMEM-style).

:class:`ShmemContext` extends the rank context with the device-side verbs
the paper's GPU implementations use:

* ``put_signal_nbi`` — ``nvshmem_double_put_signal_nbi``: one fused
  operation moves the data and then sets a signal word at the target, with
  the library guaranteeing the signal is observable only after the data
  (the *put-with-signal* primitive whose absence from one-sided MPI costs
  CPUs two extra ops per message);
* ``wait_until_all`` / ``wait_until_any`` —
  ``nvshmem_uint64_wait_until_{all,any}``: block on signal words, waking
  ``costs.wait_wakeup`` after the satisfying write lands;
* ``atomic_compare_swap`` — device-initiated remote atomic;
* ``quiet`` — complete all outstanding non-blocking puts from this PE.

Signals live in a dedicated uint64 :class:`~repro.comm.window.Window`.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.comm.base import CommError, Request
from repro.comm.context import RankContext
from repro.comm.window import Window, _propagate_failure
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.job import Job

__all__ = ["ShmemContext", "SIGNAL_SET", "SIGNAL_ADD"]

SIGNAL_SET = "set"
SIGNAL_ADD = "add"


class ShmemContext(RankContext):
    """A PE (processing element) with device-initiated one-sided verbs."""

    def __init__(self, job: "Job", rank: int):
        super().__init__(job, rank)
        self._outstanding_puts: list[Event] = []

    # ------------------------------------------------------------------
    # put with signal
    # ------------------------------------------------------------------

    def put_signal_nbi(
        self,
        data_win: Window,
        target: int,
        values: np.ndarray | None = None,
        *,
        offset: int = 0,
        nelems: int | None = None,
        signal_win: Window,
        signal_idx: int,
        signal_value: int = 1,
        signal_op: str = SIGNAL_SET,
    ) -> Generator:
        """Fused non-blocking put + signal (``nvshmem_*_put_signal_nbi``).

        The data lands in ``data_win`` at ``target``; the signal word
        ``signal_win[target][signal_idx]`` is updated *after* the data is
        visible.  Returns a :class:`Request` tracking remote completion
        (``quiet`` also covers it).
        """
        if not 0 <= target < self.size:
            raise CommError(f"put_signal target {target} out of range")
        if signal_op not in (SIGNAL_SET, SIGNAL_ADD):
            raise CommError(f"unknown signal_op {signal_op!r}")
        if values is None and nelems is None:
            raise CommError("put_signal_nbi needs values or nelems")
        if values is not None:
            values = np.asarray(values, dtype=data_win.dtype).ravel()
            nelems = len(values)
        nbytes = nelems * data_win.dtype.itemsize + signal_win.dtype.itemsize
        self.counter.operations += 1
        self.counter.messages += 1
        self.counter.bytes_sent += nbytes
        yield self.sim.timeout(self.costs.put_signal)
        target_ep = self.job.endpoints[target]
        delivery = self.fabric.transfer(self.endpoint, target_ep, nbytes)
        done = self.sim.event()

        def land(_ev: Event) -> None:
            if _propagate_failure(_ev, done):
                return
            # Data first, then the signal becomes observable: one atomic
            # step at the same simulated instant preserves the ordering
            # guarantee (no waiter can observe signal-without-data).
            data_win._apply_write(target, offset, values)
            sig = signal_win.buffers[target]
            if signal_op == SIGNAL_SET:
                sig[signal_idx] = signal_value
            else:
                sig[signal_idx] += signal_value
            signal_win._apply_write(target, signal_idx, None)  # ring watchers
            done.succeed()

        delivery.event.add_callback(land)
        self._outstanding_puts.append(done)
        if self.job.tracer.enabled:
            self.job.tracer.emit(
                self.sim.now,
                "put_signal",
                self.rank,
                target=target,
                nbytes=nbytes,
                signal_idx=signal_idx,
            )
        return Request(done, "put_signal", nbytes)

    def put_signal_batch(
        self,
        data_win: Window,
        target: int,
        n: int,
        *,
        nelems: int,
        offset: int = 0,
        signal_win: Window,
        signal_idx: int,
        signal_value: int = 1,
        signal_op: str = SIGNAL_ADD,
    ) -> Generator:
        """``n`` back-to-back pure-timing ``put_signal_nbi`` of one size.

        Bulk path: counters and per-message channel reservations are
        replayed exactly (:mod:`repro.perf.engine`); the data write, the
        signal update (``n`` accumulated adds, or the final set) and the
        watcher ring are applied in one step at the *last* delivery time,
        tracked as a single outstanding put so ``quiet`` drains the whole
        batch.  A bulk receiver recovers the per-message signal timing
        from the returned delivery schedule via the batch rendezvous — a
        scalar ``wait_until_all`` on the same window would see the signals
        land all-at-once, which is why both sides of a batch must take the
        same path (guaranteed by :func:`repro.perf.bulk_enabled` being a
        per-job predicate).

        Returns the delivery-time schedule on the bulk path, None on the
        scalar fallback.
        """
        from repro import perf
        from repro.perf.engine import FabricPath

        if n < 1:
            raise CommError(f"put_signal_batch needs n >= 1, got {n}")
        if not 0 <= target < self.size:
            raise CommError(f"put_signal target {target} out of range")
        if signal_op not in (SIGNAL_SET, SIGNAL_ADD):
            raise CommError(f"unknown signal_op {signal_op!r}")
        if not perf.bulk_enabled(self.job):
            for _ in range(n):
                yield from self.put_signal_nbi(
                    data_win,
                    target,
                    nelems=nelems,
                    offset=offset,
                    signal_win=signal_win,
                    signal_idx=signal_idx,
                    signal_value=signal_value,
                    signal_op=signal_op,
                )
            return None
        nbytes = nelems * data_win.dtype.itemsize + signal_win.dtype.itemsize
        c = self.counter
        c.operations += n
        c.messages += n
        cost = self.costs.put_signal
        bs = c.bytes_sent
        t = self.sim.now
        issue = [0.0] * n
        for k in range(n):
            bs += nbytes
            t = t + cost
            issue[k] = t
        c.bytes_sent = bs
        path = FabricPath(self.fabric, self.endpoint, self.job.endpoints[target])
        deliver = path.transfer_times(nbytes, issue)
        last = deliver[0]
        for v in deliver:
            if v > last:
                last = v
        done = self.sim.event()

        def _complete(_ev: Event) -> None:
            data_win._apply_write(target, offset, None)
            sig = signal_win.buffers[target]
            if signal_op == SIGNAL_SET:
                sig[signal_idx] = signal_value
            else:
                sig[signal_idx] += signal_value * n
            signal_win._apply_write(target, signal_idx, None)
            done.succeed()

        self.sim.at_time(last).add_callback(_complete)
        self._outstanding_puts.append(done)
        yield self.sim.at_time(t)
        return deliver

    # ------------------------------------------------------------------
    # waiting on signals
    # ------------------------------------------------------------------

    def _signals_satisfied(
        self, signal_win: Window, idxs: Sequence[int], value: int, require_all: bool
    ) -> list[int]:
        sig = signal_win.buffers[self.rank]
        hit = [i for i in idxs if sig[i] >= value]
        if require_all:
            return hit if len(hit) == len(idxs) else []
        return hit

    def wait_until_all(
        self, signal_win: Window, idxs: Sequence[int], value: int = 1
    ) -> Generator:
        """Block until every ``signal_win[self][i] >= value``.

        An epoch-style cold wait: cheap counter checks per arrival
        (``poll_slot`` per watched slot), one full ``wait_wakeup`` when the
        epoch completes.
        """
        idxs = list(idxs)
        self.counter.syncs += 1
        self.counter.operations += 1
        if not idxs:
            return  # vacuously satisfied (e.g. a rank with no neighbors)
        blocked = False
        while not self._signals_satisfied(signal_win, idxs, value, require_all=True):
            blocked = True
            yield signal_win.on_write(self.rank)
            recheck = self.costs.poll_slot * len(idxs)
            if recheck > 0:
                yield self.sim.timeout(recheck)
        if blocked and self.costs.wait_wakeup > 0:
            yield self.sim.timeout(self.costs.wait_wakeup)

    def wait_until_any(
        self,
        signal_win: Window,
        idxs: Sequence[int],
        value: int = 1,
        *,
        consume: bool = False,
    ) -> Generator:
        """Block until some ``signal_win[self][i] >= value``; returns that
        index.  With ``consume=True`` the signal is reset to 0 on return
        (the SpTRSV receive-loop idiom).

        Unlike :meth:`wait_until_all` (an epoch-style cold wait, which pays
        the full ``wait_wakeup`` on completion), ``wait_until_any`` is the
        hot-loop receive primitive of persistent-kernel solvers: the warp
        stays resident, but every wake must *scan* the slot array to find
        which signal fired — ``wait_poll + poll_slot * slots`` per pass.
        ``wait_poll`` is architecture-sensitive (uncached global-memory
        scans on V100 vs L2-resident signals on A100), one of the reasons
        SpTRSV stops scaling on Summit GPUs but scales on Perlmutter.
        """
        idxs = list(idxs)
        if not idxs:
            raise CommError("wait_until_any needs at least one index")
        self.counter.syncs += 1
        self.counter.operations += 1
        while True:
            hit = self._signals_satisfied(signal_win, idxs, value, require_all=False)
            if hit:
                break
            yield signal_win.on_write(self.rank)
            recheck = self.costs.wait_poll + self.costs.poll_slot * len(idxs)
            if recheck > 0:
                yield self.sim.timeout(recheck)
        idx = hit[0]
        if consume:
            signal_win.buffers[self.rank][idx] = 0
        return idx

    # ------------------------------------------------------------------
    # atomics and completion
    # ------------------------------------------------------------------

    def atomic_compare_swap(
        self, win: Window, target: int, offset: int, compare: Any, value: Any
    ) -> Generator:
        """Blocking device-initiated remote CAS; returns the old value."""
        handle = win.handle(self)
        req = yield from handle.compare_and_swap(target, offset, compare, value)
        if not req.done:
            old = yield req.event
        else:
            old = req.event.value
        return old

    def atomic_fetch_add(
        self, win: Window, target: int, offset: int, value: Any
    ) -> Generator:
        """Blocking device-initiated remote fetch-and-add; returns old value."""
        handle = win.handle(self)
        req = yield from handle.fetch_and_add(target, offset, value)
        if not req.done:
            old = yield req.event
        else:
            old = req.event.value
        return old

    def quiet(self) -> Generator:
        """``nvshmem_quiet``: complete all outstanding puts from this PE."""
        self.counter.syncs += 1
        self.counter.operations += 1
        if self.costs.flush > 0:
            yield self.sim.timeout(self.costs.flush)
        # Failed puts (fault injection) stay pending so the loss surfaces
        # here, at the quiet — the NVSHMEM completion point.
        pending = [
            ev for ev in self._outstanding_puts if not ev.triggered or not ev.ok
        ]
        if pending:
            yield self.sim.all_of(pending)
        self._outstanding_puts = [
            ev for ev in self._outstanding_puts if not ev.triggered
        ]

    def barrier_all(self) -> Generator:
        """``nvshmem_barrier_all``: quiet + barrier."""
        yield from self.quiet()
        yield from self.barrier()
