"""Common communication-layer types: messages, requests, status, counters.

These are shared between the two-sided MPI layer (``repro.comm.mpi``-style
semantics in ``context``/``matching``), the one-sided window layer
(``repro.comm.window``), and the GPU-initiated SHMEM layer
(``repro.comm.shmem``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.event import Event

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Status",
    "Request",
    "OpCounter",
    "CommError",
]

ANY_SOURCE = -1
ANY_TAG = -1


class CommError(RuntimeError):
    """Raised for misuse of the communication API."""


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: float


_msg_seq = itertools.count()


@dataclass
class Message:
    """An in-flight two-sided message (envelope + optional payload).

    ``on_match`` hooks the matching engine for protocol messages: when set,
    matching calls ``on_match(posted, msg)`` instead of completing the
    posted receive directly (used for the rendezvous RTS phase).
    """

    src: int
    dst: int
    tag: int
    nbytes: float
    payload: Any = None
    on_match: Any = None
    seq: int = field(default_factory=lambda: next(_msg_seq))

    def matches(self, source: int, tag: int) -> bool:
        """Envelope match against a posted receive's (source, tag) pattern."""
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


class Request:
    """Handle for a non-blocking operation (send, recv, put, atomic).

    ``event`` fires when the operation completes; for receives the value is
    a ``(payload, Status)`` pair, for fetch-style atomics it is the fetched
    value, for sends/puts it is ``None``.
    """

    __slots__ = ("event", "kind", "nbytes")

    def __init__(self, event: "Event", kind: str, nbytes: float = 0.0):
        self.event = event
        self.kind = kind
        self.nbytes = nbytes

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def value(self) -> Any:
        if not self.event.triggered:
            raise CommError(f"{self.kind} request not complete; wait on it first")
        return self.event.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} {state}>"


@dataclass
class OpCounter:
    """Per-rank instrumentation: the quantities behind the paper's Table II.

    ``messages``/``bytes_sent`` count payload-bearing transfers;
    ``operations`` counts every runtime call (the 2-vs-4 ops-per-message
    distinction); ``syncs`` counts blocking synchronisation points, so
    ``messages / syncs`` is the paper's msg/sync metric.
    """

    messages: int = 0
    bytes_sent: float = 0.0
    operations: int = 0
    syncs: int = 0
    atomics: int = 0
    recv_messages: int = 0
    bytes_received: float = 0.0

    def msg_per_sync(self) -> float:
        return self.messages / self.syncs if self.syncs else float("nan")

    def ops_per_message(self) -> float:
        return self.operations / self.messages if self.messages else float("nan")

    def words_per_message(self, word_bytes: int = 8) -> float:
        if not self.messages:
            return float("nan")
        return self.bytes_sent / self.messages / word_bytes

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Aggregate counters across ranks (returns a new counter)."""
        return OpCounter(
            messages=self.messages + other.messages,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            operations=self.operations + other.operations,
            syncs=self.syncs + other.syncs,
            atomics=self.atomics + other.atomics,
            recv_messages=self.recv_messages + other.recv_messages,
            bytes_received=self.bytes_received + other.bytes_received,
        )
