"""Job runner: launch N rank programs on a machine and collect results.

A :class:`Job` owns the simulator, the fabric, and one context per rank.
Rank programs are generator functions ``program(ctx, *args)``; the job runs
them to completion and reports the virtual makespan plus per-rank
instrumentation::

    job = Job(perlmutter_cpu(), nranks=4, runtime="two_sided")
    result = job.run(my_program, some_arg)
    print(result.time, result.counters.msg_per_sync())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable
from functools import reduce
from typing import Any

import numpy as np

from repro.comm.base import OpCounter
from repro.comm.context import RankContext
from repro.comm.window import Window
from repro.faults.inject import FaultInjector, current_plan, current_scope
from repro.faults.plan import FaultPlan
from repro.machines.base import MachineModel, Placement
from repro.net.fabric import Fabric
from repro.obs.session import current as _obs_current
from repro.obs.spans import SpanTracker
from repro.sim.engine import Simulator
from repro.sim.event import Event
from repro.sim.rng import RngFactory
from repro.sim.trace import NullTracer, Tracer
from repro.transport.registry import TransportBackend, get_backend

__all__ = ["Job", "JobResult"]


@dataclass
class JobResult:
    """Outcome of a job run."""

    time: float  # virtual makespan (seconds)
    results: list[Any]  # per-rank program return values
    per_rank: list[OpCounter]
    counters: OpCounter  # merged across ranks
    events_processed: int

    def gups(self, total_updates: int) -> float:
        """Giga-updates/s for ``total_updates`` completed in this run."""
        if self.time <= 0:
            raise ValueError("run time is zero; cannot compute GUPS")
        return total_updates / self.time / 1e9


class Job:
    """N simulated ranks on one machine under one runtime profile."""

    def __init__(
        self,
        machine: MachineModel,
        nranks: int,
        runtime: str | TransportBackend,
        *,
        placement: Placement = "block",
        seed: int = 0,
        trace: bool = False,
        faults: FaultPlan | None = None,
        sim: Simulator | None = None,
        fabric: Fabric | None = None,
        endpoints: list[str] | None = None,
        routing: Any = None,
        congestion: Any = None,
    ):
        """``sim``/``fabric``/``endpoints`` support co-scheduling: a
        :class:`repro.cluster.Cluster` hands several jobs one shared
        simulator + fabric and pins each job's ranks to the endpoints its
        placement policy chose.  ``routing``/``congestion`` configure a
        job-owned fabric (ignored when ``fabric`` is passed); all five
        default to ``None``, which keeps the original single-job path —
        and its arithmetic — untouched.
        """
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if endpoints is None and nranks > machine.max_ranks:
            raise ValueError(
                f"{nranks} ranks exceed {machine.name!r} capacity {machine.max_ranks}"
            )
        if endpoints is not None and len(endpoints) != nranks:
            raise ValueError(
                f"endpoints list has {len(endpoints)} entries for {nranks} ranks"
            )
        self.machine = machine
        self.nranks = nranks
        # The backend registry supplies the context class, the cost-profile
        # key, and the channel factory (repro.transport).
        self.backend = (
            runtime if isinstance(runtime, TransportBackend) else get_backend(runtime)
        )
        self.runtime_name = self.backend.name
        self.costs = machine.runtime(self.backend.resolve_costs_key())
        self.placement = placement
        self.sim = sim if sim is not None else Simulator()
        # An ambient observation session (repro.obs.observe) supplies the
        # tracer, metrics registry and span tracker; outside one, the
        # zero-overhead defaults apply (NullTracer, no metrics).
        self.obs = _obs_current()
        if trace:
            self.tracer: Tracer = Tracer()
        elif self.obs is not None:
            self.tracer = self.obs.tracer_for(
                f"{machine.name}/{self.runtime_name}/P{nranks}"
            )
        else:
            self.tracer = NullTracer()
        self.metrics = self.obs.metrics if self.obs is not None else None
        self.spans: SpanTracker = (
            self.obs.spans if self.obs is not None else SpanTracker()
        )
        # An explicit plan wins; otherwise the ambient faults.inject()
        # scope applies (how experiment runners reach jobs built deep
        # inside workloads).  A clean/absent plan keeps the fabric on its
        # byte-identical fault-free path.
        plan = faults if faults is not None else current_plan()
        self.fault_plan = plan
        self.fault_injector = None
        if plan is not None and not plan.clean:
            self.fault_injector = FaultInjector(plan, self.backend.fault_semantics)
            scope = current_scope()
            if scope is not None:
                scope.attach(self.fault_injector)
        if fabric is not None:
            self.fabric = fabric
        else:
            self.fabric = Fabric(
                self.sim,
                machine.topology,
                self.tracer,
                metrics=self.metrics,
                faults=self.fault_injector,
                routing=routing,
                congestion=congestion,
            )
        if self.metrics is not None:
            self.metrics.register_collector(self._collect_comm_metrics)
        self.rng = RngFactory(seed)
        if endpoints is not None:
            for ep in endpoints:
                if not machine.topology.has_endpoint(ep):
                    raise KeyError(
                        f"endpoint {ep!r} not in machine {machine.name!r}"
                    )
            self.endpoints = list(endpoints)
            self.sharing = {
                ep: self.endpoints.count(ep) for ep in set(self.endpoints)
            }
        else:
            self.endpoints = [
                machine.endpoint_of_rank(r, nranks, placement) for r in range(nranks)
            ]
            self.sharing = machine.ranks_per_endpoint(nranks, placement)
        ctx_cls = self.backend.context_cls
        self.contexts: list[RankContext] = [
            ctx_cls(self, r) for r in range(nranks)
        ]
        self.windows: list[Window] = []
        # Barrier state.
        self._barrier_gen = 0
        self._barrier_count = 0
        self._barrier_event: Event | None = None
        self._barrier_delay = self._collective_delay()
        # Allreduce state.
        self._allreduce_count = 0
        self._allreduce_event: Event | None = None
        self._allreduce_acc = 0.0

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------

    def route_latency(self, a: int, b: int) -> float:
        """Wire latency between the endpoints hosting ranks ``a`` and ``b``."""
        return self.machine.topology.route(self.endpoints[a], self.endpoints[b]).latency

    def max_route_latency(self, rank: int) -> float:
        """Worst-case wire latency from ``rank`` to any other rank."""
        src = self.endpoints[rank]
        eps = set(self.endpoints)
        return max(self.machine.topology.route(src, dst).latency for dst in eps)

    def _collective_delay(self) -> float:
        """Per-rank cost of one dissemination barrier/allreduce release:
        ``ceil(log2 P)`` rounds of small-message exchange."""
        if self.nranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(self.nranks))
        eps = sorted(set(self.endpoints))
        worst = max(
            self.machine.topology.route(a, b).latency for a in eps for b in eps
        )
        per_round = (
            max(self.costs.isend, self.costs.put, self.costs.put_signal) + worst
        )
        return rounds * per_round

    # ------------------------------------------------------------------
    # collectives (rendezvous machinery used by the contexts)
    # ------------------------------------------------------------------

    def _barrier_arrive(self) -> tuple[Event, float]:
        if self._barrier_event is None:
            self._barrier_event = self.sim.event()
        ev = self._barrier_event
        self._barrier_count += 1
        if self._barrier_count == self.nranks:
            ev.succeed(self._barrier_gen)
            self._barrier_gen += 1
            self._barrier_count = 0
            self._barrier_event = None
        return ev, self._barrier_delay

    def _allreduce_arrive(self, rank: int, value: float):
        if self._allreduce_event is None:
            self._allreduce_event = self.sim.event()
            self._allreduce_acc = 0.0
        ev = self._allreduce_event
        self._allreduce_acc += value
        self._allreduce_count += 1
        if self._allreduce_count == self.nranks:
            ev.succeed(self._allreduce_acc)
            self._allreduce_count = 0
            self._allreduce_event = None
        return ev, self._barrier_delay, ev

    # ------------------------------------------------------------------
    # windows
    # ------------------------------------------------------------------

    def window(self, count: int, dtype=np.float64, fill: Any = 0) -> Window:
        """Allocate a symmetric RMA window (``count`` elems per rank).

        Like ``MPI_Win_allocate`` this is logically collective; here it is
        performed before the run starts, at zero simulated cost.
        """
        win = Window(self, count, dtype=dtype, fill=fill)
        self.windows.append(win)
        return win

    def channel(self, spec: Any):
        """Open a transport channel for ``spec`` through this job's backend
        (see :mod:`repro.transport`).  Collective, zero simulated cost."""
        return self.backend.open(self, spec)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        program: Callable[..., Any],
        *args: Any,
        max_events: int | None = None,
        **kwargs: Any,
    ) -> JobResult:
        """Run ``program(ctx, *args, **kwargs)`` on every rank to completion.

        ``max_events`` caps the processed-event count as a livelock guard
        (see :meth:`repro.sim.Simulator.run`).
        """
        with self.spans.span(f"job:{self.machine.name}:{self.runtime_name}"):
            with self.spans.span("spawn"):
                procs = self.launch(program, *args, **kwargs)
                done = self.sim.all_of(procs)
            with self.spans.span("simulate"):
                self.sim.run(until=done, max_events=max_events)
            with self.spans.span("collect"):
                result = self.collect(procs)
        return result

    def launch(self, program: Callable[..., Any], *args: Any, **kwargs: Any) -> list:
        """Spawn one process per rank without driving the simulator.

        The co-scheduling entry point: :class:`repro.cluster.Cluster`
        launches several jobs' rank programs into one shared simulator,
        runs it once, then calls :meth:`collect` per job.
        """
        return [
            self.sim.process(program(ctx, *args, **kwargs), name=f"rank{ctx.rank}")
            for ctx in self.contexts
        ]

    def collect(self, procs: list) -> JobResult:
        """Gather per-rank results/counters after the simulator has run
        the processes returned by :meth:`launch` to completion."""
        results = [p.value for p in procs]
        per_rank = [ctx.counter for ctx in self.contexts]
        merged = reduce(OpCounter.merge, per_rank, OpCounter())
        return JobResult(
            time=self.sim.now,
            results=results,
            per_rank=per_rank,
            counters=merged,
            events_processed=self.sim.event_count,
        )

    def _collect_comm_metrics(self) -> dict[str, float]:
        """Snapshot-time per-runtime op counters (fed by the comm layers'
        :class:`OpCounter` bookkeeping; sum-merged across jobs)."""
        merged = reduce(
            OpCounter.merge, (ctx.counter for ctx in self.contexts), OpCounter()
        )
        prefix = f"comm.{self.runtime_name}"
        return {
            f"{prefix}.jobs": 1.0,
            f"{prefix}.messages": float(merged.messages),
            f"{prefix}.bytes_sent": merged.bytes_sent,
            f"{prefix}.operations": float(merged.operations),
            f"{prefix}.syncs": float(merged.syncs),
            f"{prefix}.atomics": float(merged.atomics),
            f"{prefix}.recv_messages": float(merged.recv_messages),
            f"{prefix}.bytes_received": merged.bytes_received,
        }
