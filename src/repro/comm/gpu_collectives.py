"""Deprecated shim: GPU-initiated ring allreduce (paper §V future work).

This module used to carry a hand-rolled put-with-signal ring allreduce.
That one-off is superseded by :mod:`repro.collectives`, where the same
ring (plus recursive doubling, trees, and the rest of the family) is a
pure schedule over the transport verbs and runs on every registered
backend.  :func:`run_ring_allreduce` survives one deprecation cycle as a
thin shim: the legacy validations and result-dict shape are preserved,
the work is done by :func:`repro.collectives.run_collective` on the
``shmem`` (GPU-initiated) runtime.

Migrate::

    from repro.collectives import run_collective
    r = run_collective(machine, "shmem", "allreduce",
                       nranks=4, nelems=n, algorithm="ring", stripes=4)
    r.time, r.bus_bandwidth        # was out["time"], out["algo_bandwidth"]
"""

from __future__ import annotations

import numpy as np

from repro._compat import deprecated
from repro.comm.base import CommError
from repro.transport import SHMEM

__all__ = ["run_ring_allreduce"]


@deprecated("repro.collectives.run_collective(..., algorithm='ring')")
def run_ring_allreduce(
    machine,
    nranks: int,
    nelems: int,
    *,
    values: list[np.ndarray] | None = None,
    stripes: int = 1,
) -> dict:
    """Run the GPU-initiated ring allreduce; returns timing (+ results).

    .. deprecated::
        Use :func:`repro.collectives.run_collective` with
        ``runtime="shmem"``, ``algorithm="ring"``.  This shim keeps the
        legacy dict shape (``time`` / ``results`` / ``algo_bandwidth`` /
        ``nelems`` / ``nranks``) and the legacy argument checks.
    """
    from repro.collectives import run_collective

    # Legacy contract: the old ring required an even split and capped
    # stripes at the chunk size; keep both checks (and CommError, not
    # CollectiveError) so existing callers see identical failures.
    if nelems % max(nranks, 1):
        raise CommError("nelems must be divisible by nranks")
    chunk = max(nelems // max(nranks, 1), 1)
    if stripes < 1 or stripes > max(chunk, 1):
        raise CommError(f"stripes must be in [1, chunk], got {stripes}")

    r = run_collective(
        machine,
        SHMEM,
        "allreduce",
        nranks=nranks,
        nelems=nelems,
        algorithm="ring",
        stripes=stripes,
        values=values,
    )
    return {
        "time": r.time,
        "results": r.results if r.executed else [None] * nranks,
        # Old metric: 2(P-1)/P * bytes / t — exactly the NCCL bus
        # bandwidth the new API reports for a ring allreduce.
        "algo_bandwidth": r.bus_bandwidth,
        "nelems": nelems,
        "nranks": nranks,
    }
