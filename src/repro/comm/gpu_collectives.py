"""Device-initiated collectives (the NCCL-style future work of paper §V).

The paper closes by naming AI collectives (NCCL/RCCL/HCCL) as the next
communication pattern to model.  This module implements the core NCCL
algorithm — the **ring allreduce** — twice over the same fabric:

* :func:`ring_allreduce_shmem` — GPU-initiated: every step is a
  ``put_signal_nbi`` into the neighbor's staging buffer plus a
  ``wait_until`` on the incoming signal, all inside the persistent kernel
  (no host round trips), double-buffered like the stencil;
* host-initiated — just run :func:`repro.comm.collectives.allreduce` under
  the GPU machine's ``two_sided`` (CUDA-aware MPI) runtime; every step then
  pays the device-sync + host-MPI cost.

The ring moves ``2 * (P-1) / P`` of the buffer per rank — bandwidth-optimal
— in ``2 * (P-1)`` latency steps: reduce-scatter then allgather.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.comm.base import CommError
from repro.comm.job import Job
from repro.comm.shmem import ShmemContext
from repro.comm.window import Window
from repro.transport import SHMEM

__all__ = ["ring_allreduce_shmem", "run_ring_allreduce"]


def ring_allreduce_shmem(
    ctx: ShmemContext,
    values: np.ndarray | None,
    data_win: Window,
    sig_win: Window,
    *,
    nelems: int | None = None,
    stripes: int = 1,
) -> Generator:
    """Bandwidth-optimal ring allreduce, GPU-initiated.

    ``data_win`` must hold at least ``2 * ceil(n / P)`` elements per rank
    (double-buffered staging for one chunk); ``sig_win`` needs
    ``2 * (P - 1) * stripes`` signal slots.  In execute mode pass ``values``
    (length divisible by P for simplicity); in simulate mode pass
    ``nelems``.  Returns the reduced array (or None in simulate mode).

    ``stripes`` splits every hop's chunk into that many concurrent puts —
    NCCL's multi-ring trick.  On a multi-channel link (A100 NVLink port
    groups) one stream only reaches a single port's bandwidth; striping
    engages the whole group.
    """
    P = ctx.size
    me = ctx.rank
    execute = values is not None
    if execute:
        buf = np.asarray(values, dtype=np.float64).ravel().copy()
        n = buf.size
    else:
        if nelems is None:
            raise CommError("ring_allreduce_shmem needs values or nelems")
        n = int(nelems)
        buf = None
    if n % P:
        raise CommError(
            f"ring allreduce requires len(values) divisible by P ({n} % {P})"
        )
    chunk = n // P
    if P == 1:
        return buf
    if stripes < 1 or stripes > max(chunk, 1):
        raise CommError(f"stripes must be in [1, chunk], got {stripes}")
    if data_win.count < 2 * chunk:
        raise CommError("data window too small: need 2 * (n / P) elements")
    if sig_win.count < 2 * (P - 1) * stripes:
        raise CommError("signal window too small: need 2*(P-1)*stripes slots")
    right = (me + 1) % P

    def _stripe_bounds(s: int) -> tuple[int, int]:
        base, rem = divmod(chunk, stripes)
        lo = s * base + min(s, rem)
        return lo, lo + base + (1 if s < rem else 0)

    def send_chunk(step: int, idx: int) -> Generator:
        parity = step % 2
        for s in range(stripes):
            lo, hi = _stripe_bounds(s)
            if execute:
                payload = buf[idx * chunk + lo : idx * chunk + hi]
            else:
                payload = None
            yield from ctx.put_signal_nbi(
                data_win,
                right,
                values=payload,
                nelems=hi - lo,
                offset=parity * chunk + lo,
                signal_win=sig_win,
                signal_idx=step * stripes + s,
                signal_value=1,
            )

    def recv_chunk(step: int) -> Generator:
        slots = [step * stripes + s for s in range(stripes)]
        yield from ctx.wait_until_all(sig_win, slots, value=1)
        parity = step % 2
        if execute:
            return np.array(
                data_win.local(me)[parity * chunk : (parity + 1) * chunk],
                copy=True,
            )
        return None

    # Phase 1: reduce-scatter.  After P-1 steps rank i owns the fully
    # reduced chunk (i + 1) % P.
    for step in range(P - 1):
        send_idx = (me - step) % P
        yield from send_chunk(step, send_idx)
        incoming = yield from recv_chunk(step)
        recv_idx = (me - step - 1) % P
        if execute:
            buf[recv_idx * chunk : (recv_idx + 1) * chunk] += incoming

    # Phase 2: allgather — circulate the reduced chunks.
    for step in range(P - 1, 2 * (P - 1)):
        k = step - (P - 1)
        send_idx = (me - k + 1) % P
        yield from send_chunk(step, send_idx)
        incoming = yield from recv_chunk(step)
        recv_idx = (me - k) % P
        if execute:
            buf[recv_idx * chunk : (recv_idx + 1) * chunk] = incoming
    yield from ctx.quiet()
    return buf


def run_ring_allreduce(
    machine,
    nranks: int,
    nelems: int,
    *,
    values: list[np.ndarray] | None = None,
    stripes: int = 1,
) -> dict:
    """Run the GPU-initiated ring allreduce; returns timing (+ results).

    ``values`` (one array per rank) switches on execute mode; results are
    in the returned dict under ``"results"``.  ``stripes`` engages link
    sub-channels (see :func:`ring_allreduce_shmem`).
    """
    if nelems % max(nranks, 1):
        raise CommError("nelems must be divisible by nranks")
    job = Job(machine, nranks, SHMEM, placement="spread")
    chunk = max(nelems // max(nranks, 1), 1)
    data_win = job.window(2 * chunk, dtype=np.float64)
    sig_win = job.window(
        max(2 * (nranks - 1) * stripes, 1), dtype=np.uint64
    )

    def program(ctx):
        mine = values[ctx.rank] if values is not None else None
        yield from ctx.barrier()
        t0 = ctx.sim.now
        out = yield from ring_allreduce_shmem(
            ctx, mine, data_win, sig_win, nelems=nelems, stripes=stripes
        )
        return ctx.sim.now - t0, out

    res = job.run(program)
    times = [r[0] for r in res.results]
    bytes_moved = 2 * (nranks - 1) / max(nranks, 1) * nelems * 8
    t = max(times)
    return {
        "time": t,
        "results": [r[1] for r in res.results],
        "algo_bandwidth": bytes_moved / t if t > 0 else float("inf"),
        "nelems": nelems,
        "nranks": nranks,
    }
