"""One-sided MPI: RMA windows, put/get, flush, fence, atomics.

A :class:`Window` exposes one numpy buffer per rank (as ``MPI_Win_allocate``
does).  Verbs are charged with the machine's one-sided
:class:`~repro.machines.base.CommCosts`:

* ``put``/``get`` post non-blocking RMA ops (cost ``costs.put``);
* ``flush(target)`` blocks until every outstanding op to ``target`` is
  complete *at the target*, paying the acknowledgement trip back — this is
  why the paper's 4-op one-sided message (put, flush, put-signal, flush)
  costs ~5 us on Perlmutter CPUs against 3.3 us for two-sided;
* ``fence`` is a full epoch close: complete everything, then barrier;
* atomics (``compare_and_swap``, ``fetch_and_add``) are round trips applied
  serially at the target (a per-target atomic unit), which is where the
  hashtable's hot-spot contention comes from.

Writes to a rank's buffer ring that rank's *write watchers* — the hook both
the CPU polling loop (paper Listing 1) and NVSHMEM ``wait_until`` build on.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.comm.base import CommError, Request
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.context import RankContext
    from repro.comm.job import Job

__all__ = ["Window", "WindowHandle"]


def _propagate_failure(ev: Event, done: Event) -> bool:
    """Forward a failed fabric delivery into an op's completion event.

    One-sided semantics: the origin does not learn about the loss at the
    Put — the failure is parked on ``done`` (defused, so it never raises
    unhandled) and surfaces when a flush/wait/fence gathers it.  Returns
    True when ``ev`` failed and the op must not apply its effects.
    """
    if ev.ok:
        return False
    done.fail(ev.value)
    done.defuse()
    return True


class Window:
    """A symmetric RMA window: ``count`` elements of ``dtype`` on each rank."""

    def __init__(self, job: "Job", count: int, dtype=np.float64, fill: Any = 0):
        if count < 1:
            raise ValueError(f"window count must be >= 1, got {count}")
        self.job = job
        self.count = count
        self.dtype = np.dtype(dtype)
        self.buffers = [
            np.full(count, fill, dtype=self.dtype) for _ in range(job.nranks)
        ]
        # Outstanding RMA completion events, per (origin, target).
        self._outstanding: dict[tuple[int, int], list[Event]] = {}
        # Serialisation point for atomics at each target.
        self._atomic_next_free: list[float] = [0.0] * job.nranks
        # Write watchers, per target rank.
        self._watchers: list[list[Event]] = [[] for _ in range(job.nranks)]
        # Passive-target lock state per target: holders + FIFO wait queue.
        self._lock_holders: list[dict[int, bool]] = [{} for _ in range(job.nranks)]
        self._lock_queue: list[list[tuple[int, bool, Event]]] = [
            [] for _ in range(job.nranks)
        ]

    # -- local access ---------------------------------------------------------

    def local(self, rank: int) -> np.ndarray:
        """Direct access to ``rank``'s window memory (local loads/stores)."""
        return self.buffers[rank]

    # -- write plumbing ---------------------------------------------------------

    def _apply_write(self, target: int, offset: int, values: np.ndarray | None) -> None:
        if values is not None:
            n = len(values)
            if offset < 0 or offset + n > self.count:
                raise CommError(
                    f"window write [{offset}, {offset + n}) out of bounds "
                    f"(count {self.count})"
                )
            self.buffers[target][offset : offset + n] = values
        watchers, self._watchers[target] = self._watchers[target], []
        for ev in watchers:
            ev.succeed()

    def on_write(self, target: int) -> Event:
        """An event that fires at the next remote write landing on ``target``."""
        ev = self.job.sim.event()
        self._watchers[target].append(ev)
        return ev

    def _track(self, origin: int, target: int, ev: Event) -> None:
        self._outstanding.setdefault((origin, target), []).append(ev)

    def _pending(self, origin: int, target: int | None) -> list[Event]:
        # Failed ops (fault injection) stay pending: a flush must gather
        # them so the loss surfaces at the synchronisation point.
        if target is None:
            pending = [
                ev
                for (o, _t), evs in self._outstanding.items()
                if o == origin
                for ev in evs
                if not ev.triggered or not ev.ok
            ]
        else:
            pending = [
                ev
                for ev in self._outstanding.get((origin, target), [])
                if not ev.triggered or not ev.ok
            ]
        return pending

    def _gc(self, origin: int) -> None:
        for key in [k for k in self._outstanding if k[0] == origin]:
            self._outstanding[key] = [
                ev for ev in self._outstanding[key] if not ev.triggered
            ]

    # -- passive-target lock machinery ----------------------------------------

    def _lock_compatible(self, target: int, exclusive: bool) -> bool:
        holders = self._lock_holders[target]
        if not holders:
            return True
        if exclusive:
            return False
        return not any(holders.values())  # shared with shared only

    def _lock_request(self, origin: int, target: int, exclusive: bool) -> Event:
        if origin in self._lock_holders[target]:
            raise CommError(
                f"rank {origin} already holds a lock on target {target}"
            )
        ev = self.job.sim.event()
        if self._lock_compatible(target, exclusive) and not self._lock_queue[target]:
            self._lock_holders[target][origin] = exclusive
            ev.succeed()
        else:
            self._lock_queue[target].append((origin, exclusive, ev))
        return ev

    def _lock_release(self, origin: int, target: int) -> None:
        holders = self._lock_holders[target]
        if origin not in holders:
            raise CommError(f"rank {origin} does not hold a lock on {target}")
        del holders[origin]
        # Grant as many queued requests as compatibility allows (FIFO).
        queue = self._lock_queue[target]
        while queue:
            o, excl, ev = queue[0]
            if not self._lock_compatible(target, excl):
                break
            queue.pop(0)
            holders[o] = excl
            ev.succeed()
            if excl:
                break

    def handle(self, ctx: "RankContext") -> "WindowHandle":
        """This rank's verb interface to the window."""
        return WindowHandle(self, ctx)


class WindowHandle:
    """Rank-local verbs on a :class:`Window` (origin = ``ctx.rank``)."""

    def __init__(self, window: Window, ctx: "RankContext"):
        self.window = window
        self.ctx = ctx
        self.rank = ctx.rank

    # -- local convenience -------------------------------------------------------

    @property
    def local(self) -> np.ndarray:
        return self.window.local(self.rank)

    # -- data movement ---------------------------------------------------------

    def put(
        self,
        target: int,
        values: np.ndarray | None = None,
        *,
        offset: int = 0,
        nelems: int | None = None,
    ) -> Generator:
        """Non-blocking ``MPI_Put``; completion requires a flush/fence.

        Either pass ``values`` (copied into the target at arrival) or, in
        pure-timing mode, just ``nelems``.
        """
        ctx, win = self.ctx, self.window
        if values is None and nelems is None:
            raise CommError("put needs values or nelems")
        if values is not None:
            values = np.asarray(values, dtype=win.dtype)
            if values.ndim != 1:
                values = values.ravel()
            nelems = len(values)
        nbytes = nelems * win.dtype.itemsize
        if not 0 <= target < ctx.size:
            raise CommError(f"put target {target} out of range")
        ctx.counter.operations += 1
        ctx.counter.messages += 1
        ctx.counter.bytes_sent += nbytes
        yield ctx.sim.timeout(ctx.costs.put)
        target_ep = ctx.job.endpoints[target]
        delivery = ctx.fabric.transfer(ctx.endpoint, target_ep, nbytes)
        done = ctx.sim.event()
        target_ctx = ctx.job.contexts[target]

        def land(_ev: Event) -> None:
            if _propagate_failure(_ev, done):
                return
            # The target runtime's copy engine (if any) delays visibility.
            delay = target_ctx.charge_copy(nbytes)

            def visible(_e: Event) -> None:
                win._apply_write(target, offset, values)
                done.succeed()

            if delay > 0:
                ctx.sim.timeout(delay).add_callback(visible)
            else:
                visible(_ev)

        delivery.event.add_callback(land)
        win._track(self.rank, target, done)
        if ctx.job.tracer.enabled:
            ctx.job.tracer.emit(
                ctx.sim.now,
                "put",
                self.rank,
                target=target,
                nbytes=nbytes,
                offset=offset,
            )
        return Request(done, "put", nbytes)

    def put_batch(
        self, target: int, n: int, *, nelems: int, offset: int = 0
    ) -> Generator:
        """``n`` back-to-back pure-timing puts of the same size (bulk path).

        Timing- and state-identical to ``n`` sequential :meth:`put` calls
        with ``nelems`` elements each — counters, channel reservations and
        the target's copy-engine serialisation are replayed per message by
        :mod:`repro.perf.engine` — but only two events touch the heap: the
        sender's resume and one tracked completion at the last write's
        visibility time, so a later flush/fence drains the whole batch as
        one pending event.  Falls back to the scalar loop whenever
        :func:`repro.perf.bulk_enabled` vetoes the job (faults, tracing,
        engine disabled).

        Returns the per-message delivery times on the bulk path (consumed
        by the transport layer's batch rendezvous), None on the fallback.
        """
        from repro import perf
        from repro.perf.engine import FabricPath, bulk_visible_last

        ctx, win = self.ctx, self.window
        if n < 1:
            raise CommError(f"put_batch needs n >= 1, got {n}")
        if not 0 <= target < ctx.size:
            raise CommError(f"put target {target} out of range")
        if not perf.bulk_enabled(ctx.job):
            for _ in range(n):
                yield from self.put(target, nelems=nelems, offset=offset)
            return None
        nbytes = nelems * win.dtype.itemsize
        c = ctx.counter
        c.operations += n
        c.messages += n
        put_cost = ctx.costs.put
        bs = c.bytes_sent
        t = ctx.sim.now
        issue = [0.0] * n
        for k in range(n):
            bs += nbytes
            t = t + put_cost
            issue[k] = t
        c.bytes_sent = bs
        path = FabricPath(ctx.fabric, ctx.endpoint, ctx.job.endpoints[target])
        deliver = path.transfer_times(nbytes, issue)
        last = bulk_visible_last(ctx.job.contexts[target], nbytes, deliver)
        done = ctx.sim.event()

        def _complete(_ev: Event) -> None:
            win._apply_write(target, offset, None)
            done.succeed()

        ctx.sim.at_time(last).add_callback(_complete)
        win._track(self.rank, target, done)
        yield ctx.sim.at_time(t)
        return deliver

    def get(
        self, target: int, *, offset: int = 0, nelems: int = 1
    ) -> Generator:
        """Non-blocking ``MPI_Get``: a request/response round trip.

        The returned request completes with the fetched ndarray once the
        response arrives (local completion via ``flush``/``flush_local``).
        """
        ctx, win = self.ctx, self.window
        nbytes = nelems * win.dtype.itemsize
        ctx.counter.operations += 1
        yield ctx.sim.timeout(ctx.costs.get)
        target_ep = ctx.job.endpoints[target]
        request_leg = ctx.fabric.transfer(ctx.endpoint, target_ep, 8.0)
        done = ctx.sim.event()

        def at_target(_ev: Event) -> None:
            if _propagate_failure(_ev, done):
                return
            data = np.array(win.buffers[target][offset : offset + nelems], copy=True)
            response = ctx.fabric.transfer(target_ep, ctx.endpoint, nbytes)
            response.event.add_callback(
                lambda _e: None if _propagate_failure(_e, done) else done.succeed(data)
            )

        request_leg.event.add_callback(at_target)
        win._track(self.rank, target, done)
        return Request(done, "get", nbytes)

    # -- completion ------------------------------------------------------------

    def flush(self, target: int | None = None) -> Generator:
        """``MPI_Win_flush`` (or ``flush_all`` when ``target`` is None):
        wait for remote completion of outstanding ops, including the
        acknowledgement trip back to the origin."""
        ctx, win = self.ctx, self.window
        ctx.counter.operations += 1
        ctx.counter.syncs += 1
        yield ctx.sim.timeout(ctx.costs.flush)
        pending = win._pending(self.rank, target)
        if pending:
            yield ctx.sim.all_of(pending)
        # Remote-completion acknowledgement: over RDMA a flush is realised
        # as a zero-byte read after the writes — a full round trip to the
        # (furthest) flushed target.
        if target is not None:
            ack = 2.0 * ctx.job.route_latency(target, self.rank)
        else:
            ack = 2.0 * ctx.job.max_route_latency(self.rank)
        if ack > 0:
            yield ctx.sim.timeout(ack)
        win._gc(self.rank)

    def flush_local(self, target: int | None = None) -> Generator:
        """``MPI_Win_flush_local``: local completion only (buffers reusable;
        fetch results available).  No remote acknowledgement trip."""
        ctx, win = self.ctx, self.window
        ctx.counter.operations += 1
        ctx.counter.syncs += 1
        yield ctx.sim.timeout(ctx.costs.flush)
        pending = win._pending(self.rank, target)
        if pending:
            yield ctx.sim.all_of(pending)
        win._gc(self.rank)

    def fence(self) -> Generator:
        """``MPI_Win_fence``: close the epoch — complete all outstanding ops
        from this rank, then synchronise all ranks."""
        ctx, win = self.ctx, self.window
        ctx.counter.operations += 1
        yield ctx.sim.timeout(ctx.costs.fence)
        pending = win._pending(self.rank, None)
        if pending:
            yield ctx.sim.all_of(pending)
        win._gc(self.rank)
        yield from ctx.barrier()

    def accumulate(
        self,
        target: int,
        values: np.ndarray,
        *,
        offset: int = 0,
        op: str = "sum",
    ) -> Generator:
        """``MPI_Accumulate``: element-wise combine into the target window.

        Per the MPI standard, accumulates with the same op are element-wise
        atomic; the combine is applied at message arrival so concurrent
        accumulates from different origins never lose updates.
        """
        ctx, win = self.ctx, self.window
        if op not in ("sum", "max", "min", "replace"):
            raise CommError(f"unsupported accumulate op {op!r}")
        values = np.asarray(values, dtype=win.dtype).ravel()
        nbytes = values.size * win.dtype.itemsize
        if offset < 0 or offset + values.size > win.count:
            raise CommError("accumulate out of window bounds")
        ctx.counter.operations += 1
        ctx.counter.messages += 1
        ctx.counter.bytes_sent += nbytes
        yield ctx.sim.timeout(ctx.costs.put)
        target_ep = ctx.job.endpoints[target]
        delivery = ctx.fabric.transfer(ctx.endpoint, target_ep, nbytes)
        done = ctx.sim.event()

        def land(_ev: Event) -> None:
            if _propagate_failure(_ev, done):
                return
            buf = win.buffers[target]
            view = buf[offset : offset + values.size]
            if op == "sum":
                view += values
            elif op == "max":
                np.maximum(view, values, out=view)
            elif op == "min":
                np.minimum(view, values, out=view)
            else:
                view[:] = values
            win._apply_write(target, offset, None)  # ring watchers
            done.succeed()

        delivery.event.add_callback(land)
        win._track(self.rank, target, done)
        return Request(done, "accumulate", nbytes)

    # -- passive-target epochs ------------------------------------------------

    def lock(self, target: int, *, exclusive: bool = False) -> Generator:
        """``MPI_Win_lock``: open a passive-target access epoch.

        Exclusive locks serialise against every other epoch on the target;
        shared locks (the default, matching ``MPI_LOCK_SHARED``) coexist
        with each other.  Lock acquisition costs one request round trip.
        """
        ctx, win = self.ctx, self.window
        ctx.counter.operations += 1
        yield ctx.sim.timeout(ctx.costs.flush)
        grant = win._lock_request(self.rank, target, exclusive)
        if not grant.triggered:
            yield grant
        # Grant notification travels back from the target.
        ack = ctx.job.route_latency(target, self.rank)
        if ack > 0:
            yield ctx.sim.timeout(ack)

    def unlock(self, target: int) -> Generator:
        """``MPI_Win_unlock``: close the epoch; implies a flush."""
        yield from self.flush(target)
        self.window._lock_release(self.rank, target)

    # -- atomics ------------------------------------------------------------------

    def _atomic(self, target: int, offset: int, apply_fn) -> Generator:
        """Shared atomic machinery: round trip + serial application."""
        ctx, win = self.ctx, self.window
        if not 0 <= offset < win.count:
            raise CommError(f"atomic offset {offset} out of bounds ({win.count})")
        ctx.counter.operations += 1
        ctx.counter.atomics += 1
        yield ctx.sim.timeout(ctx.costs.fetch_op)
        target_ep = ctx.job.endpoints[target]
        request_leg = ctx.fabric.transfer(ctx.endpoint, target_ep, 16.0, atomic=True)
        done = ctx.sim.event()

        def at_target(_ev: Event) -> None:
            if _propagate_failure(_ev, done):
                return
            # Atomics serialise at the target's atomic unit.
            now = ctx.sim.now
            start = max(now, win._atomic_next_free[target])
            finish = start + ctx.costs.atomic_apply
            win._atomic_next_free[target] = finish

            def apply_and_respond(_e: Event) -> None:
                old = apply_fn(win.buffers[target])
                win._apply_write(target, offset, None)  # ring watchers
                response = ctx.fabric.transfer(target_ep, ctx.endpoint, 8.0)
                response.event.add_callback(
                    lambda _r: None
                    if _propagate_failure(_r, done)
                    else done.succeed(old)
                )

            ctx.sim.timeout(finish - now).add_callback(apply_and_respond)

        request_leg.event.add_callback(at_target)
        win._track(self.rank, target, done)
        return Request(done, "atomic", 8.0)

    def compare_and_swap(
        self, target: int, offset: int, compare: Any, value: Any
    ) -> Generator:
        """Non-blocking CAS: returns a request completing with the old value."""

        def apply_fn(buf: np.ndarray) -> Any:
            old = buf[offset].item()
            if old == compare:
                buf[offset] = value
            return old

        req = yield from self._atomic(target, offset, apply_fn)
        if self.ctx.job.tracer.enabled:
            self.ctx.job.tracer.emit(
                self.ctx.sim.now, "cas", self.rank, target=target, offset=offset
            )
        return req

    def fetch_and_add(self, target: int, offset: int, value: Any) -> Generator:
        """Non-blocking fetch-and-add: request completes with the old value."""

        def apply_fn(buf: np.ndarray) -> Any:
            old = buf[offset].item()
            buf[offset] = old + value
            return old

        req = yield from self._atomic(target, offset, apply_fn)
        return req

    def fetch_and_replace(self, target: int, offset: int, value: Any) -> Generator:
        """Non-blocking atomic swap (``MPI_Fetch_and_op`` with
        ``MPI_REPLACE``): request completes with the old value."""

        def apply_fn(buf: np.ndarray) -> Any:
            old = buf[offset].item()
            buf[offset] = value
            return old

        req = yield from self._atomic(target, offset, apply_fn)
        return req

    def cas_blocking(
        self, target: int, offset: int, compare: Any, value: Any
    ) -> Generator:
        """CAS + ``flush_local``: returns the old value (hashtable idiom)."""
        req = yield from self.compare_and_swap(target, offset, compare, value)
        old = yield from self.ctx.wait(req)
        return old

    def faa_blocking(self, target: int, offset: int, value: Any) -> Generator:
        """Fetch-and-add + wait: returns the old value."""
        req = yield from self.fetch_and_add(target, offset, value)
        old = yield from self.ctx.wait(req)
        return old
