"""Collective operations built from point-to-point messages.

Unlike the Job-level :meth:`~repro.comm.context.RankContext.barrier` /
``allreduce_sum`` (closed-form cost models used by the workloads), these
collectives are real message-passing algorithms executed over the fabric —
every hop is a simulated ``isend``/``recv`` pair, so their cost emerges
from the same LogGP machinery as everything else and their results are
computed from actually-moved payloads.

Algorithms (the textbook choices for small/medium messages):

* :func:`bcast` — binomial tree;
* :func:`reduce` — binomial tree (mirror of bcast);
* :func:`allreduce` — recursive doubling (power-of-two ranks) with a
  fold-in pre/post phase for the remainder;
* :func:`allgather` — ring;
* :func:`alltoall` — pairwise exchange (XOR schedule when P is a power of
  two, shifted ring otherwise);
* :func:`dissemination_barrier` — the classic log-round barrier.

All take/return numpy arrays and are driven with ``yield from`` inside a
rank program, like every other verb.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.comm.base import CommError

__all__ = [
    "bcast",
    "reduce",
    "allreduce",
    "allgather",
    "alltoall",
    "dissemination_barrier",
]

_TAG_BCAST = 101
_TAG_REDUCE = 102
_TAG_ALLREDUCE = 103
_TAG_ALLGATHER = 104
_TAG_ALLTOALL = 105
_TAG_BARRIER = 106
_TAG_FOLD = 107

_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    return np.atleast_1d(arr).ravel().copy()


def _combine(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    try:
        fn = _OPS[op]
    except KeyError:
        raise CommError(
            f"unsupported reduction op {op!r}; available: {sorted(_OPS)}"
        ) from None
    return fn(a, b)


def bcast(ctx, value=None, root: int = 0) -> Generator:
    """Binomial-tree broadcast; returns the root's array on every rank.

    ``ceil(log2 P)`` rounds: in round k, ranks within distance ``2**k`` of
    the root relay to rank ``+2**k`` (relative ranking puts the root at 0).
    """
    P = ctx.size
    if not 0 <= root < P:
        raise CommError(f"bcast root {root} out of range")
    me = (ctx.rank - root) % P
    buf = _as_array(value) if ctx.rank == root else None
    if P == 1:
        return buf
    mask = 1
    while mask < P:
        if me < mask:  # already has the data: relay
            peer = me + mask
            if peer < P:
                req = yield from ctx.isend(
                    (peer + root) % P,
                    nbytes=buf.nbytes,
                    tag=_TAG_BCAST,
                    payload=buf,
                )
                yield from ctx.waitall([req])
        elif me < 2 * mask:  # receives in this round
            payload, _ = yield from ctx.recv(
                source=(me - mask + root) % P, tag=_TAG_BCAST
            )
            buf = payload.copy()
        mask <<= 1
    return buf


def reduce(ctx, value, op: str = "sum", root: int = 0) -> Generator:
    """Binomial-tree reduction; the root returns the combined array, other
    ranks return None."""
    P = ctx.size
    if not 0 <= root < P:
        raise CommError(f"reduce root {root} out of range")
    me = (ctx.rank - root) % P
    acc = _as_array(value)
    mask = 1
    while mask < P:
        if me & mask:
            dest = ((me & ~mask) + root) % P
            req = yield from ctx.isend(
                dest, nbytes=acc.nbytes, tag=_TAG_REDUCE, payload=acc
            )
            yield from ctx.waitall([req])
            return None
        peer = me | mask
        if peer < P:
            payload, _ = yield from ctx.recv(
                source=(peer + root) % P, tag=_TAG_REDUCE
            )
            acc = _combine(op, acc, payload)
        mask <<= 1
    return acc if ctx.rank == root else None


def allreduce(ctx, value, op: str = "sum") -> Generator:
    """Recursive-doubling allreduce; every rank returns the combined array.

    For non-power-of-two P the ``r = P - 2**floor(log2 P)`` extra ranks
    fold their contribution into a partner first and receive the final
    result at the end (the standard MPICH scheme).
    """
    P = ctx.size
    acc = _as_array(value)
    if P == 1:
        return acc
    pof2 = 1 << (P.bit_length() - 1)
    if pof2 == P:
        rem = 0
    else:
        rem = P - pof2
    me = ctx.rank
    in_core = True
    if me < 2 * rem:
        if me % 2 == 1:  # odd ranks fold in and wait
            req = yield from ctx.isend(
                me - 1, nbytes=acc.nbytes, tag=_TAG_FOLD, payload=acc
            )
            yield from ctx.waitall([req])
            in_core = False
        else:  # even ranks absorb their odd neighbor
            payload, _ = yield from ctx.recv(source=me + 1, tag=_TAG_FOLD)
            acc = _combine(op, acc, payload)
    if in_core:
        core_rank = me // 2 if me < 2 * rem else me - rem
        mask = 1
        while mask < pof2:
            peer_core = core_rank ^ mask
            peer = peer_core * 2 if peer_core < rem else peer_core + rem
            send_req = yield from ctx.isend(
                peer, nbytes=acc.nbytes, tag=_TAG_ALLREDUCE, payload=acc
            )
            payload, _ = yield from ctx.recv(source=peer, tag=_TAG_ALLREDUCE)
            yield from ctx.waitall([send_req])
            acc = _combine(op, acc, payload)
            mask <<= 1
    if me < 2 * rem:
        if me % 2 == 0:
            req = yield from ctx.isend(
                me + 1, nbytes=acc.nbytes, tag=_TAG_FOLD, payload=acc
            )
            yield from ctx.waitall([req])
        else:
            payload, _ = yield from ctx.recv(source=me - 1, tag=_TAG_FOLD)
            acc = payload.copy()
    return acc


def allgather(ctx, value) -> Generator:
    """Ring allgather; returns the concatenation over ranks (rank order)."""
    P = ctx.size
    mine = _as_array(value)
    n = mine.size
    out: list[np.ndarray | None] = [None] * P
    out[ctx.rank] = mine
    if P == 1:
        return mine.copy()
    right = (ctx.rank + 1) % P
    left = (ctx.rank - 1) % P
    carried = mine
    for step in range(P - 1):
        send_req = yield from ctx.isend(
            right, nbytes=carried.nbytes, tag=_TAG_ALLGATHER, payload=carried
        )
        payload, _ = yield from ctx.recv(source=left, tag=_TAG_ALLGATHER)
        yield from ctx.waitall([send_req])
        src_rank = (ctx.rank - step - 1) % P
        out[src_rank] = payload.copy()
        carried = payload
    if any(o is None for o in out):
        raise CommError("allgather ring left gaps (internal error)")
    if any(o.size != n for o in out):
        raise CommError("allgather requires equal contribution sizes")
    return np.concatenate(out)


def alltoall(ctx, blocks) -> Generator:
    """Pairwise-exchange all-to-all.

    ``blocks`` is a list of P equal-size arrays (``blocks[j]`` goes to rank
    ``j``); returns the list of P arrays received (``out[i]`` came from
    rank ``i``).  Power-of-two P uses the XOR schedule; otherwise a shifted
    ring of sendrecvs.
    """
    P = ctx.size
    if len(blocks) != P:
        raise CommError(f"alltoall needs {P} blocks, got {len(blocks)}")
    blocks = [_as_array(b) for b in blocks]
    out: list[np.ndarray | None] = [None] * P
    out[ctx.rank] = blocks[ctx.rank].copy()
    if P == 1:
        return [b for b in out]  # type: ignore[misc]
    pow2 = P & (P - 1) == 0
    for step in range(1, P):
        peer = (ctx.rank ^ step) if pow2 else (ctx.rank + step) % P
        src = peer if pow2 else (ctx.rank - step) % P
        send_req = yield from ctx.isend(
            peer,
            nbytes=blocks[peer].nbytes,
            tag=_TAG_ALLTOALL + step,
            payload=blocks[peer],
        )
        payload, _ = yield from ctx.recv(source=src, tag=_TAG_ALLTOALL + step)
        yield from ctx.waitall([send_req])
        out[src] = payload.copy()
    return out  # type: ignore[return-value]


def dissemination_barrier(ctx) -> Generator:
    """The log-round dissemination barrier, as real messages.

    Round k: rank ``i`` signals rank ``(i + 2**k) % P`` and waits for the
    signal from ``(i - 2**k) % P``.  After ``ceil(log2 P)`` rounds every
    rank transitively depends on every other.
    """
    P = ctx.size
    if P == 1:
        return
    mask = 1
    rnd = 0
    while mask < P:
        to = (ctx.rank + mask) % P
        frm = (ctx.rank - mask) % P
        req = yield from ctx.isend(to, nbytes=8, tag=_TAG_BARRIER + rnd)
        _payload, _ = yield from ctx.recv(source=frm, tag=_TAG_BARRIER + rnd)
        yield from ctx.waitall([req])
        mask <<= 1
        rnd += 1
