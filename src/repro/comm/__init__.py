"""Communication layers: two-sided MPI, one-sided RMA windows, GPU SHMEM.

All three layers share the :class:`~repro.comm.job.Job` runner and charge
their software costs from the machine's per-runtime
:class:`~repro.machines.base.CommCosts` profile, so the paper's central
accounting — two ops per two-sided message vs. four per one-sided message vs.
one fused GPU put-with-signal — is explicit in the op stream.
"""

from repro.comm.base import (
    ANY_SOURCE,
    ANY_TAG,
    CommError,
    Message,
    OpCounter,
    Request,
    Status,
)
from repro.comm.collectives import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    dissemination_barrier,
    reduce,
)
from repro.comm.context import RankContext
from repro.comm.job import Job, JobResult
from repro.comm.matching import MatchingEngine
from repro.comm.shmem import SIGNAL_ADD, SIGNAL_SET, ShmemContext
from repro.comm.window import Window, WindowHandle

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommError",
    "Message",
    "OpCounter",
    "Request",
    "Status",
    "RankContext",
    "Job",
    "JobResult",
    "MatchingEngine",
    "ShmemContext",
    "SIGNAL_SET",
    "SIGNAL_ADD",
    "Window",
    "WindowHandle",
    "allgather",
    "allreduce",
    "alltoall",
    "bcast",
    "dissemination_barrier",
    "reduce",
]
