"""The two-sided matching engine: posted receives vs. unexpected messages.

Implements standard MPI matching semantics per receiving rank:

* a posted receive names ``(source, tag)``, either of which may be a
  wildcard (:data:`~repro.comm.base.ANY_SOURCE` / ``ANY_TAG``);
* an arriving message matches the *oldest* posted receive whose pattern it
  satisfies; if none, it joins the unexpected queue;
* a newly posted receive first scans the unexpected queue in arrival order
  (non-overtaking: messages from one sender match in the order sent —
  guaranteed here because the fabric preserves per-pair ordering and the
  queues are FIFO).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.comm.base import Message, Status
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["PostedRecv", "MatchingEngine"]


@dataclass
class PostedRecv:
    """One posted (possibly wildcard) receive awaiting a message."""

    source: int
    tag: int
    event: Event  # fires with (payload, Status)


class MatchingEngine:
    """Per-rank mailbox implementing MPI envelope matching.

    ``delay_fn(msg)`` supplies the receiver-side completion delay (matching
    plus copy cost) applied between match time and receive completion,
    regardless of whether the match happened at delivery or at post time.
    """

    def __init__(self, sim: "Simulator", rank: int, delay_fn=None):
        self.sim = sim
        self.rank = rank
        self._delay_fn = delay_fn if delay_fn is not None else (lambda msg: 0.0)
        self._unexpected: deque[Message] = deque()
        self._posted: deque[PostedRecv] = deque()
        self._arrival_watchers: list[Event] = []
        self.matched_count = 0

    @property
    def unexpected_depth(self) -> int:
        return len(self._unexpected)

    @property
    def posted_depth(self) -> int:
        return len(self._posted)

    def deliver(self, msg: Message) -> None:
        """A message has arrived from the fabric.

        If a posted receive matches, its event fires after the receiver-side
        matching/copy delay; otherwise the message waits in the unexpected
        queue.
        """
        if msg.dst != self.rank:
            raise ValueError(
                f"message for rank {msg.dst} delivered to engine of rank {self.rank}"
            )
        watchers, self._arrival_watchers = self._arrival_watchers, []
        for ev in watchers:
            ev.succeed()
        for i, posted in enumerate(self._posted):
            if msg.matches(posted.source, posted.tag):
                del self._posted[i]
                self._complete(posted, msg)
                return
        self._unexpected.append(msg)

    def post(self, source: int, tag: int, event: Event) -> None:
        """Post a receive; match immediately against the unexpected queue."""
        for i, msg in enumerate(self._unexpected):
            if msg.matches(source, tag):
                del self._unexpected[i]
                self._complete(PostedRecv(source, tag, event), msg)
                return
        self._posted.append(PostedRecv(source, tag, event))

    def probe(self, source: int, tag: int) -> Message | None:
        """Non-destructive check of the unexpected queue (``MPI_Iprobe``)."""
        for msg in self._unexpected:
            if msg.matches(source, tag):
                return msg
        return None

    def take(self, source: int, tag: int) -> Message | None:
        """Pop the oldest matching unexpected message (polling receive)."""
        for i, msg in enumerate(self._unexpected):
            if msg.matches(source, tag):
                del self._unexpected[i]
                self.matched_count += 1
                return msg
        return None

    def on_arrival(self) -> Event:
        """Event firing at the next message delivery to this rank."""
        ev = Event(self.sim)
        self._arrival_watchers.append(ev)
        return ev

    def _complete(self, posted: PostedRecv, msg: Message) -> None:
        self.matched_count += 1
        if msg.on_match is not None:
            # Protocol message (rendezvous RTS): the data phase charges the
            # receive-side costs itself; none are charged here.
            msg.on_match(posted, msg)
            return
        value = (msg.payload, Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes))
        posted.event.succeed(value, delay=self._delay_fn(msg))
