"""Per-rank communication context: the simulated two-sided MPI API.

A rank program is a generator taking a :class:`RankContext`; every
communication call is itself a generator and must be driven with
``yield from`` so that the software overhead it charges advances the rank's
virtual time::

    def program(ctx):
        req = yield from ctx.isend(dest=1, nbytes=1024, payload=data)
        got, status = yield from ctx.recv(source=1)
        yield from ctx.waitall([req])

Timing model (LogGP mapping; costs from the machine's
:class:`~repro.machines.base.CommCosts`):

* ``isend`` charges the sender ``o = costs.isend`` serially — the overhead
  the paper says cannot be overlapped by sending more messages;
* eager messages (≤ ``eager_threshold``) travel immediately and the send
  completes locally (buffered); larger messages use a rendezvous
  (RTS/CTS) exchange that also waits for the receive to be posted;
* the receiver charges ``recv_match + nbytes * copy_per_byte`` per message
  between wire arrival and receive completion;
* a blocking wait that actually blocks charges ``sync_enter`` on wake-up —
  this one-time cost, amortised over all messages completed by the wait,
  is why more messages per synchronization raises achieved bandwidth.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.comm.base import (
    ANY_SOURCE,
    ANY_TAG,
    CommError,
    Message,
    OpCounter,
    Request,
    Status,
)
from repro.comm.matching import MatchingEngine
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.job import Job

__all__ = ["RankContext"]


def _raise(exc: BaseException) -> None:
    """Re-raise a failed delivery from inside an event callback.

    Two-sided deliveries only fail when fault injection runs a two-sided
    verb under surface-mode semantics (no receiver exists to surface the
    loss at); re-raising aborts the simulation at the delivery instant
    rather than letting the receiver hang forever.
    """
    raise exc


class RankContext:
    """One MPI rank's view of the job: identity, mailbox, and verbs."""

    def __init__(self, job: "Job", rank: int):
        self.job = job
        self.rank = rank
        self.size = job.nranks
        self.sim = job.sim
        self.fabric = job.fabric
        self.machine = job.machine
        self.costs = job.costs
        self.endpoint = job.endpoints[rank]
        self.sharing = job.sharing[self.endpoint]
        self.on_gpu = job.machine.is_gpu_machine
        self.counter = OpCounter()
        self.engine = MatchingEngine(job.sim, rank, delay_fn=self._recv_delay)
        # Receiver-side copy engine: serialises the runtime's per-byte copy
        # work (Spectrum MPI's extra copy caps achieved X-Bus bandwidth near
        # 25 GB/s in the paper's Fig. 3c).  Zero-cost when copy_per_byte=0.
        self._copy_next_free = 0.0

    # ------------------------------------------------------------------
    # local compute
    # ------------------------------------------------------------------

    def compute(
        self, nbytes: float = 0.0, flops: float = 0.0, seconds: float | None = None
    ) -> Generator:
        """Advance this rank's clock by modelled (or explicit) compute time."""
        t = (
            seconds
            if seconds is not None
            else self.machine.compute_time(
                nbytes, flops, sharing=self.sharing, on_gpu=self.on_gpu
            )
        )
        if t > 0:
            yield self.sim.timeout(t)
        return t

    # ------------------------------------------------------------------
    # two-sided verbs
    # ------------------------------------------------------------------

    def charge_copy(self, nbytes: float) -> float:
        """Reserve the rank's copy engine for ``nbytes``; returns the delay
        from now until the copy finishes.  Copies are serialised, so at high
        message rates this becomes the pipeline bottleneck."""
        copy = nbytes * self.costs.copy_per_byte
        if copy <= 0:
            return 0.0
        start = max(self.sim.now, self._copy_next_free)
        finish = start + copy
        self._copy_next_free = finish
        return finish - self.sim.now

    def _recv_delay(self, msg: Message) -> float:
        return self.costs.recv_match + self.charge_copy(msg.nbytes)

    def isend(
        self,
        dest: int,
        nbytes: float,
        tag: int = 0,
        payload: Any = None,
    ) -> Generator:
        """Post a non-blocking send; returns a :class:`Request`.

        Charges ``costs.isend`` of sender time before returning, which
        serialises back-to-back sends exactly as LogGP's per-message ``o``.
        """
        if not 0 <= dest < self.size:
            raise CommError(f"isend dest {dest} out of range (size {self.size})")
        if nbytes < 0:
            raise CommError(f"isend nbytes must be >= 0, got {nbytes}")
        self.counter.operations += 1
        self.counter.messages += 1
        self.counter.bytes_sent += nbytes
        yield self.sim.timeout(self.costs.isend)
        msg = Message(src=self.rank, dst=dest, tag=tag, nbytes=nbytes, payload=payload)
        dst_ctx = self.job.contexts[dest]
        send_done = self.sim.event()
        if self.job.tracer.enabled:
            self.job.tracer.emit(
                self.sim.now, "send", self.rank, dst=dest, tag=tag, nbytes=nbytes
            )
        if nbytes <= self.costs.eager_threshold:
            delivery = self.fabric.transfer(
                self.endpoint, dst_ctx.endpoint, nbytes, payload=msg
            )
            delivery.event.add_callback(
                lambda ev: dst_ctx._deliver(ev.value) if ev.ok else _raise(ev.value)
            )
            # Eager: the library buffers the data; the send completes locally.
            send_done.succeed()
        else:
            self._start_rendezvous(msg, payload, dst_ctx, send_done)
        return Request(send_done, "isend", nbytes)

    def _start_rendezvous(
        self, msg: Message, payload: Any, dst_ctx: "RankContext", send_done: Event
    ) -> None:
        """RTS/CTS protocol: data moves only after the receive is posted."""
        src_ep, dst_ep = self.endpoint, dst_ctx.endpoint

        def on_match(posted, matched_msg: Message) -> None:
            # Matched at max(RTS arrival, recv posted): send CTS back, then
            # stream the data.
            cts = self.fabric.transfer(dst_ep, src_ep, 0.0)

            def after_cts(_ev: Event) -> None:
                data = self.fabric.transfer(src_ep, dst_ep, msg.nbytes)

                def after_data(_ev2: Event) -> None:
                    delay = dst_ctx._recv_delay(msg)
                    posted.event.succeed(
                        (
                            payload,
                            Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes),
                        ),
                        delay=delay,
                    )
                    if not send_done.triggered:
                        send_done.succeed()

                data.event.add_callback(after_data)

            cts.event.add_callback(after_cts)

        msg.on_match = on_match
        msg.payload = None  # envelope only; data moves in the CTS phase
        rts = self.fabric.transfer(src_ep, dst_ep, 0.0, payload=msg)
        rts.event.add_callback(
            lambda ev: dst_ctx._deliver(ev.value) if ev.ok else _raise(ev.value)
        )

    def _deliver(self, msg: Message) -> None:
        """Fabric callback: a message has arrived at this rank."""
        self.counter.recv_messages += 1
        self.counter.bytes_received += msg.nbytes
        if self.job.tracer.enabled:
            self.job.tracer.emit(
                self.sim.now,
                "arrive",
                self.rank,
                src=msg.src,
                tag=msg.tag,
                nbytes=msg.nbytes,
            )
        self.engine.deliver(msg)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Post a non-blocking receive; returns a :class:`Request` whose
        value on completion is ``(payload, Status)``."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommError(f"irecv source {source} out of range (size {self.size})")
        self.counter.operations += 1
        if self.costs.irecv > 0:
            yield self.sim.timeout(self.costs.irecv)
        ev = self.sim.event()
        self.engine.post(source, tag, ev)
        return Request(ev, "irecv")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive: ``irecv`` + ``wait``; returns ``(payload, Status)``."""
        req = yield from self.irecv(source, tag)
        value = yield from self.wait(req)
        return value

    def recv_poll(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, poll_cost: float = 1e-7
    ) -> Generator:
        """Hot-loop blocking receive (probe-and-take polling).

        A tight ``Iprobe``/``Recv`` loop, the receive idiom of
        message-rate-bound codes like GUPS: when the message is already
        queued only the matching/copy cost is paid; otherwise the rank
        spins, paying ``poll_cost`` per wake instead of the full
        ``sync_enter`` wake-up of a descheduling wait.
        """
        self.counter.operations += 1
        self.counter.syncs += 1
        while True:
            msg = self.engine.take(source, tag)
            if msg is not None:
                if msg.on_match is not None:
                    # Rendezvous RTS: kick off the data phase and wait on it.
                    from repro.comm.matching import PostedRecv

                    ev = self.sim.event()
                    msg.on_match(PostedRecv(source, tag, ev), msg)
                    value = yield ev
                    return value
                delay = self._recv_delay(msg)
                if delay > 0:
                    yield self.sim.timeout(delay)
                return (
                    msg.payload,
                    Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes),
                )
            yield self.engine.on_arrival()
            if poll_cost > 0:
                yield self.sim.timeout(poll_cost)

    def sendrecv(
        self,
        dest: int,
        nbytes: float,
        *,
        source: int | None = None,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        payload: Any = None,
    ) -> Generator:
        """Paired exchange (``MPI_Sendrecv``): send to ``dest`` while
        receiving from ``source`` (default: ``dest``); deadlock-free by
        construction.  Returns ``(payload, Status)`` of the received
        message."""
        source = dest if source is None else source
        send_req = yield from self.isend(
            dest, nbytes=nbytes, tag=sendtag, payload=payload
        )
        recv_req = yield from self.irecv(source=source, tag=recvtag)
        values = yield from self.waitall([send_req, recv_req])
        return values[1]

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Non-blocking probe (``MPI_Iprobe``): returns the matching
        message's :class:`Status` or None, without consuming it."""
        self.counter.operations += 1
        if self.costs.irecv > 0:
            yield self.sim.timeout(self.costs.irecv)
        msg = self.engine.probe(source, tag)
        if msg is None:
            return None
        return Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def wait(self, req: Request) -> Generator:
        """Block until ``req`` completes; returns its value.

        If the request is already complete only per-request bookkeeping is
        charged; a wait that actually blocks pays ``sync_enter`` on wake-up.
        """
        self.counter.syncs += 1
        self.counter.operations += 1
        if req.done:
            if self.costs.wait_per_req > 0:
                yield self.sim.timeout(self.costs.wait_per_req)
            if not req.event.ok:
                # Fault injection: the operation failed before we waited;
                # the loss surfaces here, at the synchronisation point.
                raise req.event.value
            return req.event.value
        value = yield req.event
        wake = self.costs.sync_enter + self.costs.wait_per_req
        if wake > 0:
            yield self.sim.timeout(wake)
        return value

    def waitall(self, reqs: list[Request]) -> Generator:
        """Block until every request completes (``MPI_Waitall``).

        Charges ``sync_enter`` once (if any blocking happened) plus
        ``wait_per_req`` per request — one synchronisation amortised over
        the whole batch, the heart of the msg/sync metric.
        """
        self.counter.syncs += 1
        self.counter.operations += 1
        # Already-failed requests (fault injection) are folded back in so
        # the AllOf fails and the loss surfaces at this synchronisation.
        pending = [r.event for r in reqs if not r.done or not r.event.ok]
        blocked = bool(pending)
        if pending:
            yield self.sim.all_of(pending)
        post = self.costs.wait_per_req * len(reqs) + (
            self.costs.sync_enter if blocked else 0.0
        )
        if post > 0:
            yield self.sim.timeout(post)
        return [r.event.value for r in reqs]

    def waitany(self, reqs: list[Request]) -> Generator:
        """Block until at least one request completes; returns its index.

        An empty request list completes immediately and returns ``None``
        (the ``MPI_UNDEFINED`` analogue).
        """
        self.counter.syncs += 1
        self.counter.operations += 1
        if not reqs:
            return None
        for i, r in enumerate(reqs):
            if r.done:
                if self.costs.wait_per_req > 0:
                    yield self.sim.timeout(self.costs.wait_per_req)
                return i
        yield self.sim.any_of([r.event for r in reqs])
        wake = self.costs.sync_enter + self.costs.wait_per_req
        if wake > 0:
            yield self.sim.timeout(wake)
        for i, r in enumerate(reqs):
            if r.done:
                return i
        raise AssertionError("waitany woke with no completed request")

    # ------------------------------------------------------------------
    # user-implemented receiver notification (paper Listing 1)
    # ------------------------------------------------------------------

    def poll_wait_signals(
        self, signal_win, slots: list[int], expected: int, value: int = 1
    ) -> Generator:
        """Software receiver acknowledgment over a signal window.

        Reproduces the paper's Listing 1: because standard one-sided MPI has
        no signal-waiting primitive, the receiver repeatedly scans a mask
        array of ``len(slots)`` signal words, masking out each slot whose
        signal arrived, until ``expected`` messages are in.  Each scan pass
        is charged ``costs.poll_slot`` per still-unmasked slot — the "extra
        work to maintain data arrival" that stops one-sided SpTRSV from
        scaling at high parallelism.

        Returns the list of slots received, in arrival order.
        """
        if expected > len(slots):
            raise CommError(
                f"expected {expected} signals but only {len(slots)} slots"
            )
        remaining = list(slots)
        received: list[int] = []
        self.counter.syncs += 1
        self.counter.operations += 1
        while len(received) < expected:
            scan_cost = self.costs.poll_slot * max(len(remaining), 1)
            if scan_cost > 0:
                yield self.sim.timeout(scan_cost)
            sig = signal_win.buffers[self.rank]
            hit = [s for s in remaining if sig[s] >= value]
            if hit:
                for s in hit:
                    remaining.remove(s)
                    received.append(s)
                continue
            if len(received) < expected:
                # Nothing new this pass: next scan is triggered by the next
                # write landing in the window (busy-poll without progress is
                # pure spin; modelling it as a wake keeps the event count
                # bounded while still charging the scan work per arrival).
                yield signal_win.on_write(self.rank)
        return received

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------

    def barrier(self) -> Generator:
        """Dissemination barrier across all ranks of the job."""
        self.counter.syncs += 1
        self.counter.operations += 1
        release, delay = self.job._barrier_arrive()
        yield release
        if delay > 0:
            yield self.sim.timeout(delay)

    def allreduce_sum(self, value: float) -> Generator:
        """Sum a scalar across ranks (recursive-doubling cost model).

        Values are combined centrally for correctness; each rank is charged
        ``ceil(log2 P)`` rounds of small-message exchange.
        """
        self.counter.syncs += 1
        self.counter.operations += 1
        release, delay, total = self.job._allreduce_arrive(self.rank, value)
        yield release
        if delay > 0:
            yield self.sim.timeout(delay)
        return total.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.size} on {self.endpoint}>"
