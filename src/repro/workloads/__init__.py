"""The paper's three workloads plus the flood microbenchmark.

Each workload exposes a ``run_*`` entry point returning a
:class:`~repro.workloads.base.WorkloadResult`, runs in ``execute``
(real-numerics, verifiable) or ``simulate`` (paper-scale timing) mode, and
implements the two-sided, one-sided-MPI and GPU-SHMEM variants side by side.
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.flood import (
    DEFAULT_MSGS_PER_SYNC,
    DEFAULT_SIZES,
    FloodResult,
    run_cas_flood,
    run_flood,
    sweep_flood,
)

__all__ = [
    "WorkloadResult",
    "FloodResult",
    "run_flood",
    "sweep_flood",
    "run_cas_flood",
    "DEFAULT_SIZES",
    "DEFAULT_MSGS_PER_SYNC",
]
