"""Data-parallel training step: fwd/bwd compute + gradient allreduce.

One step of synchronous data parallelism on ``nranks`` model replicas:
every rank runs forward and backward over its local batch (charged via
the machine's roofline compute model, ``6 * params * tokens`` FLOPs in
the standard transformer estimate — 2 forward, 4 backward), then the
gradients are summed across replicas with an allreduce.  ``buckets``
splits the gradient into that many back-to-back allreduces (DDP-style
bucketing; more buckets means more per-round latency, which is exactly
the alpha-cost the selector trades against).

The communication volume is ``grad_bytes`` regardless of batch size, so
growing ``tokens_per_rank`` grows only compute — the classic way ML
jobs *hide* the wire.  ``comm_fraction`` reports how much of the step
the allreduce did not hide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.core import CollectiveComm
from repro.collectives.plan import CollectiveError, plan_collective
from repro.comm.job import Job
from repro.machines.base import MachineModel

__all__ = ["RecoverableTrainingSpec", "TrainingStepResult", "run_training_step"]

_WORD = 8.0  # transport word (f64); grads are packed into words


@dataclass(frozen=True)
class RecoverableTrainingSpec:
    """The shape of a training job the cluster recovery layer can restart.

    :func:`repro.cluster.run_recoverable_training` drives ``steps``
    synchronous data-parallel steps of this shape on a shared cluster
    fabric: each step charges ``compute_seconds`` of fwd/bwd per rank,
    then ring-allreduces ``grad_bytes`` of gradient (each rank sends one
    ``grad_bytes / nranks``-sized shard per ring neighbour exchange, the
    standard bucketed-DDP wire pattern).  The spec is deliberately
    machine-free: the same job replays identically after a rank is
    respawned on a spare node, which is what checkpoint/restart needs.
    """

    steps: int = 12
    grad_bytes: float = 4 * 64 * 1024.0
    compute_seconds: float = 50e-6

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.grad_bytes < 0:
            raise ValueError(f"grad_bytes must be >= 0, got {self.grad_bytes}")
        if self.compute_seconds < 0:
            raise ValueError(
                f"compute_seconds must be >= 0, got {self.compute_seconds}"
            )

    def shard_bytes(self, nranks: int) -> float:
        """Bytes each rank moves per ring neighbour exchange."""
        return self.grad_bytes / max(nranks, 1)


@dataclass(frozen=True)
class TrainingStepResult:
    """One measured data-parallel training step."""

    machine: str
    runtime: str
    nranks: int
    grad_bytes: float
    tokens_per_rank: int
    buckets: int
    algorithm: str  # resolved allreduce algorithm
    iters: int
    time: float  # s per step
    compute_time: float  # modelled fwd+bwd per step
    comm_time: float  # step time the allreduce did not hide
    comm_fraction: float  # comm_time / time
    flops_per_rank: float
    step_rate: float  # steps / s


def _program(ctx, comm, iters, buckets, t_fwd, t_bwd):
    ep = comm.endpoint(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for _ in range(iters):
        yield from ctx.compute(seconds=t_fwd)
        yield from ctx.compute(seconds=t_bwd)
        for _ in range(buckets):
            yield from ep.run()
    return ctx.sim.now - t0


def run_training_step(
    machine: MachineModel,
    runtime: str,
    *,
    nranks: int,
    grad_bytes: float,
    tokens_per_rank: int = 512,
    buckets: int = 1,
    algorithm: str = "auto",
    stripes: int = 1,
    iters: int = 1,
    placement: str = "spread",
) -> TrainingStepResult:
    """Simulate ``iters`` data-parallel steps and measure one.

    ``grad_bytes`` is the full gradient (= 4 bytes per fp32 parameter);
    compute is the transformer estimate ``6 * params * tokens`` FLOPs
    per rank, charged through the machine's roofline model.
    """
    if grad_bytes < _WORD:
        raise CollectiveError(f"grad_bytes must be >= {_WORD}, got {grad_bytes}")
    if buckets < 1:
        raise CollectiveError(f"buckets must be >= 1, got {buckets}")
    if tokens_per_rank < 1:
        raise CollectiveError(f"tokens_per_rank must be >= 1, got {tokens_per_rank}")
    params = grad_bytes / 4.0  # fp32 parameters
    flops = 6.0 * params * tokens_per_rank
    grad_words = max(int(grad_bytes // _WORD), 1)
    if buckets > grad_words:
        raise CollectiveError(
            f"buckets={buckets} exceeds gradient words ({grad_words})"
        )
    # DDP-style bucketing: near-even split, every bucket >= 1 word.
    base, rem = divmod(grad_words, buckets)
    bucket_words = [base + (1 if b < rem else 0) for b in range(buckets)]
    plans = []
    resolved = None
    for words in bucket_words * iters:
        plan, _sel = plan_collective(
            "allreduce", nranks=nranks, nelems=words, algorithm=algorithm,
            stripes=stripes, machine=machine, runtime=runtime,
        )
        plans.append(plan)
        resolved = plan.algorithm if resolved is None else resolved
    job = Job(machine, nranks, runtime, placement=placement)
    comm = CollectiveComm(job, plans)
    # All replicas are symmetric: charge fwd (2/6) and bwd (4/6) once.
    t_fwd = machine.compute_time(0.0, flops / 3.0, on_gpu=machine.is_gpu_machine)
    t_bwd = machine.compute_time(0.0, 2.0 * flops / 3.0, on_gpu=machine.is_gpu_machine)
    with job.spans.span("ml:training_step"):
        res = job.run(_program, comm, iters, buckets, t_fwd, t_bwd)
    elapsed = max(res.results)
    net = max(elapsed - job._barrier_delay, 1e-12)
    per_step = net / iters
    compute = t_fwd + t_bwd
    comm_time = max(per_step - compute, 0.0)
    if job.metrics is not None:
        job.metrics.counter("ml.training.steps").inc(iters)
        job.metrics.counter("ml.training.grad_bytes").inc(grad_bytes * iters)
    return TrainingStepResult(
        machine=machine.name,
        runtime=job.runtime_name,
        nranks=nranks,
        grad_bytes=float(grad_bytes),
        tokens_per_rank=tokens_per_rank,
        buckets=buckets,
        algorithm=resolved or algorithm,
        iters=iters,
        time=per_step,
        compute_time=compute,
        comm_time=comm_time,
        comm_fraction=comm_time / per_step if per_step > 0 else 0.0,
        flops_per_rank=flops,
        step_rate=1.0 / per_step if per_step > 0 else 0.0,
    )
