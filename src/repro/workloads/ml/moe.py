"""Expert-parallel MoE layer: alltoall dispatch, FFN compute, combine.

One mixture-of-experts layer with one expert (group) per rank: every
rank routes an equal shard of its ``tokens_per_rank`` activations to
each expert (an **alltoall** of ``tokens/P * hidden`` words per
destination), the expert runs its FFN over everything it received
(``4 * ffn_mult * tokens * hidden^2`` FLOPs — the two matmuls of an
``hidden -> ffn_mult*hidden -> hidden`` block), and a second alltoall
routes the results back.

Communication scales with ``hidden``; expert compute with ``hidden^2``
— so widening the experts hides the dispatch, while adding tokens
scales both and leaves the dispatch fraction flat.  That crossover is
the experiment's checked finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.core import CollectiveComm
from repro.collectives.plan import CollectiveError, plan_collective
from repro.comm.job import Job
from repro.machines.base import MachineModel

__all__ = ["MoeDispatchResult", "run_moe_dispatch"]

_WORD = 8.0


@dataclass(frozen=True)
class MoeDispatchResult:
    """One measured MoE layer (dispatch + expert + combine)."""

    machine: str
    runtime: str
    nranks: int
    tokens_per_rank: int
    hidden: int
    ffn_mult: int
    algorithm: str  # resolved alltoall algorithm
    iters: int
    time: float  # s per layer
    compute_time: float  # modelled expert FFN per layer
    comm_time: float  # layer time the alltoalls did not hide
    comm_fraction: float
    dispatch_bytes: float  # wire bytes per rank per alltoall
    tokens_per_s: float


def _program(ctx, comm, iters, t_expert):
    ep = comm.endpoint(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for _ in range(iters):
        yield from ep.run()  # dispatch
        yield from ctx.compute(seconds=t_expert)
        yield from ep.run()  # combine
    return ctx.sim.now - t0


def run_moe_dispatch(
    machine: MachineModel,
    runtime: str,
    *,
    nranks: int,
    tokens_per_rank: int = 1024,
    hidden: int = 256,
    ffn_mult: int = 4,
    algorithm: str = "auto",
    iters: int = 1,
    placement: str = "spread",
) -> MoeDispatchResult:
    """Simulate ``iters`` MoE layers and measure one."""
    if tokens_per_rank < nranks:
        raise CollectiveError(
            f"tokens_per_rank ({tokens_per_rank}) must be >= nranks ({nranks})"
        )
    if hidden < 1 or ffn_mult < 1:
        raise CollectiveError("hidden and ffn_mult must be >= 1")
    # Equal routing: each rank sends tokens/P tokens to every expert.
    tokens_per_dest = tokens_per_rank // nranks
    block_words = tokens_per_dest * hidden  # per-destination alltoall block
    tokens_received = tokens_per_dest * nranks
    flops = 4.0 * ffn_mult * tokens_received * float(hidden) ** 2
    plans = []
    resolved = None
    for _ in range(2 * iters):  # dispatch + combine per layer
        plan, _sel = plan_collective(
            "alltoall", nranks=nranks, nelems=block_words,
            algorithm=algorithm, stripes=1, machine=machine, runtime=runtime,
        )
        plans.append(plan)
        resolved = plan.algorithm if resolved is None else resolved
    job = Job(machine, nranks, runtime, placement=placement)
    comm = CollectiveComm(job, plans)
    t_expert = machine.compute_time(0.0, flops, on_gpu=machine.is_gpu_machine)
    with job.spans.span("ml:moe_dispatch"):
        res = job.run(_program, comm, iters, t_expert)
    elapsed = max(res.results)
    net = max(elapsed - job._barrier_delay, 1e-12)
    per_layer = net / iters
    comm_time = max(per_layer - t_expert, 0.0)
    if job.metrics is not None:
        job.metrics.counter("ml.moe.layers").inc(iters)
        job.metrics.counter("ml.moe.tokens").inc(tokens_received * iters)
    return MoeDispatchResult(
        machine=machine.name,
        runtime=job.runtime_name,
        nranks=nranks,
        tokens_per_rank=tokens_per_rank,
        hidden=hidden,
        ffn_mult=ffn_mult,
        algorithm=resolved or algorithm,
        iters=iters,
        time=per_layer,
        compute_time=t_expert,
        comm_time=comm_time,
        comm_fraction=comm_time / per_layer if per_layer > 0 else 0.0,
        dispatch_bytes=(nranks - 1) * block_words * _WORD,
        tokens_per_s=tokens_received / per_layer if per_layer > 0 else 0.0,
    )
