"""ML traffic scenarios on the collective schedules (paper §V).

The paper closes by naming AI workloads as the next traffic pattern to
bring under the Message Roofline.  This package models the three
dominant ones as simulated programs — compute charged through the
machine's roofline model (:meth:`RankContext.compute`), communication
through :mod:`repro.collectives` schedules on the transport verbs, both
on one timeline so overlap and serialisation are what the simulator
says, not an analytic guess:

* :func:`run_training_step` — data-parallel training: fwd/bwd compute
  plus a (bucketed) gradient allreduce;
* :func:`run_moe_dispatch` — expert-parallel MoE: alltoall token
  dispatch, expert FFN compute, alltoall combine;
* :func:`run_kv_transfer` — multi-tenant inference: prefill compute,
  KV-cache broadcast to decode replicas, per-token decode.

Each runner works on every registered runtime backend, so the paper's
one-sided-vs-two-sided question can be asked of ML traffic directly.
"""

from repro.workloads.ml.inference import KvTransferResult, run_kv_transfer
from repro.workloads.ml.moe import MoeDispatchResult, run_moe_dispatch
from repro.workloads.ml.training import (
    RecoverableTrainingSpec,
    TrainingStepResult,
    run_training_step,
)

__all__ = [
    "KvTransferResult",
    "MoeDispatchResult",
    "RecoverableTrainingSpec",
    "TrainingStepResult",
    "run_kv_transfer",
    "run_moe_dispatch",
    "run_training_step",
]
