"""Multi-tenant inference: prefill, KV-cache hand-off, decode replicas.

Disaggregated serving: rank 0 is the prefill engine, the other ranks
are decode replicas for concurrent tenants.  Rank 0 runs prefill over
the prompt (compute), then the prompt's KV cache — ``2 * layers *
context_tokens * hidden`` words — is **broadcast** to every replica,
and each replica decodes ``decode_tokens`` tokens, re-reading the cache
from memory every step (the roofline's bytes term) plus the model
matmuls (the FLOPs term).

The hand-off is the one-sided-communication moment: the cache is big,
the replicas are passive, and the transfer sits directly on the
time-to-first-token path.  ``transfer_time`` isolates it;
``transfer_bandwidth`` is comparable against the machine's link peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.core import CollectiveComm
from repro.collectives.plan import CollectiveError, plan_collective
from repro.comm.job import Job
from repro.machines.base import MachineModel

__all__ = ["KvTransferResult", "run_kv_transfer"]

_WORD = 8.0


@dataclass(frozen=True)
class KvTransferResult:
    """One measured prefill -> KV hand-off -> decode pipeline."""

    machine: str
    runtime: str
    nranks: int
    context_tokens: int
    hidden: int
    layers: int
    decode_tokens: int
    algorithm: str  # resolved broadcast algorithm
    kv_bytes: float  # cache size moved to each replica
    time: float  # whole pipeline, barrier-corrected
    prefill_time: float
    transfer_time: float  # broadcast completion past prefill
    decode_time: float  # slowest replica's decode phase
    ttft: float  # time to first token: prefill + hand-off + 1 decode step
    transfer_bandwidth: float  # kv_bytes / transfer_time


def _program(ctx, comm, t_prefill, t_decode_step, decode_tokens):
    ep = comm.endpoint(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    if ctx.rank == 0:
        yield from ctx.compute(seconds=t_prefill)
    yield from ep.run(root=0)  # KV broadcast (replicas wait passively)
    t_handoff = ctx.sim.now - t0
    if ctx.rank != 0:
        for _ in range(decode_tokens):
            yield from ctx.compute(seconds=t_decode_step)
    return ctx.sim.now - t0, t_handoff


def run_kv_transfer(
    machine: MachineModel,
    runtime: str,
    *,
    nranks: int,
    context_tokens: int = 2048,
    hidden: int = 256,
    layers: int = 4,
    decode_tokens: int = 8,
    algorithm: str = "auto",
    stripes: int = 1,
    placement: str = "spread",
) -> KvTransferResult:
    """Simulate one prefill -> hand-off -> decode pipeline."""
    if nranks < 2:
        raise CollectiveError("run_kv_transfer needs a prefill rank and >= 1 replica")
    if min(context_tokens, hidden, layers, decode_tokens) < 1:
        raise CollectiveError(
            "context_tokens, hidden, layers, decode_tokens must be >= 1"
        )
    kv_words = 2 * layers * context_tokens * hidden  # K and V per layer
    kv_bytes = kv_words * _WORD
    params = 12.0 * layers * float(hidden) ** 2  # transformer block estimate
    flops_prefill = 2.0 * params * context_tokens
    flops_decode = 2.0 * params  # per generated token
    plan, _sel = plan_collective(
        "broadcast", nranks=nranks, nelems=kv_words, algorithm=algorithm,
        stripes=stripes, machine=machine, runtime=runtime,
    )
    job = Job(machine, nranks, runtime, placement=placement)
    comm = CollectiveComm(job, [plan])
    on_gpu = machine.is_gpu_machine
    t_prefill = machine.compute_time(0.0, flops_prefill, on_gpu=on_gpu)
    # Decode re-reads the whole cache each step: the bytes term competes
    # with the matmul term in the roofline max().
    t_decode_step = machine.compute_time(kv_bytes, flops_decode, on_gpu=on_gpu)
    with job.spans.span("ml:kv_transfer"):
        res = job.run(_program, comm, t_prefill, t_decode_step, decode_tokens)
    barrier = job._barrier_delay
    elapsed = max(r[0] for r in res.results) - barrier
    handoff = max(r[1] for r in res.results) - barrier
    transfer = max(handoff - t_prefill, 1e-12)
    decode = decode_tokens * t_decode_step
    if job.metrics is not None:
        job.metrics.counter("ml.inference.kv_bytes").inc(kv_bytes * (nranks - 1))
    return KvTransferResult(
        machine=machine.name,
        runtime=job.runtime_name,
        nranks=nranks,
        context_tokens=context_tokens,
        hidden=hidden,
        layers=layers,
        decode_tokens=decode_tokens,
        algorithm=plan.algorithm,
        kv_bytes=kv_bytes,
        time=max(elapsed, 1e-12),
        prefill_time=t_prefill,
        transfer_time=transfer,
        decode_time=decode,
        ttft=t_prefill + transfer + t_decode_step,
        transfer_bandwidth=kv_bytes / transfer,
    )
