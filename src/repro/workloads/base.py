"""Shared workload result types.

Every workload runner returns a :class:`WorkloadResult` so the experiment
harness and the Table II instrumentation can treat Stencil, SpTRSV and
HashTable uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm.base import OpCounter

__all__ = ["WorkloadResult"]


@dataclass
class WorkloadResult:
    """Outcome of one workload run on one machine/runtime/variant."""

    workload: str
    machine: str
    runtime: str
    variant: str  # a transport backend name (repro.transport.backend_names())
    nranks: int
    time: float  # virtual seconds for the measured region
    counters: OpCounter  # merged across ranks
    per_rank: list[OpCounter]
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def msgs_per_sync(self) -> float:
        return self.counters.msg_per_sync()

    @property
    def ops_per_message(self) -> float:
        return self.counters.ops_per_message()

    @property
    def words_per_message(self) -> float:
        return self.counters.words_per_message()

    def row(self) -> dict[str, Any]:
        """Flat summary row for report tables."""
        return {
            "workload": self.workload,
            "machine": self.machine,
            "variant": self.variant,
            "P": self.nranks,
            "time_ms": self.time * 1e3,
            "msg/sync": round(self.msgs_per_sync, 2),
            "ops/msg": round(self.ops_per_message, 2),
            "words/msg": round(self.words_per_message, 1),
        }
