"""Distributed hashtable data layout and local (owner-side) operations.

Each rank owns a fixed-size slice of the table plus an overflow heap for
collision chains (paper §III-C).  The same layout backs both variants:

* one-sided: four RMA windows — table slots, per-slot chain heads, the
  overflow heap, and the heap allocation pointer — manipulated remotely
  with atomics;
* two-sided: the owner applies inserts locally on receipt of a triplet.

Values are nonzero int64 keys; slot 0 encodes "empty".  Heap entries are
``(key, next)`` pairs where ``next`` is the 1-based index of the following
chain element (0 terminates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TableGeometry", "local_insert", "collect_values", "chain_lengths"]

EMPTY = 0


@dataclass(frozen=True)
class TableGeometry:
    """Sizes and addressing of the distributed table."""

    nranks: int
    slots_per_rank: int
    heap_per_rank: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("nranks must be >= 1")
        if self.slots_per_rank < 1:
            raise ValueError("slots_per_rank must be >= 1")
        if self.heap_per_rank < 1:
            raise ValueError("heap_per_rank must be >= 1")

    @property
    def total_slots(self) -> int:
        return self.nranks * self.slots_per_rank

    def locate(self, key: int) -> tuple[int, int]:
        """Home (rank, slot) of a key.

        Multiplicative (Fibonacci) hashing spreads sequential keys across
        ranks — the "indeterministic" peer-to-peer pattern of Table II.
        """
        if key == EMPTY:
            raise ValueError("key 0 is reserved for empty slots")
        h = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        idx = h % self.total_slots
        return int(idx // self.slots_per_rank), int(idx % self.slots_per_rank)

    @classmethod
    def for_inserts(
        cls, nranks: int, total_inserts: int, *, load_factor: float = 0.6
    ) -> "TableGeometry":
        """Geometry sized so the table ends up ~``load_factor`` full."""
        if total_inserts < 1:
            raise ValueError("total_inserts must be >= 1")
        if not 0 < load_factor <= 1:
            raise ValueError("load_factor must be in (0, 1]")
        slots = max(int(total_inserts / load_factor / nranks) + 1, 4)
        heap = max(int(total_inserts / nranks) + 4, 8)
        return cls(nranks=nranks, slots_per_rank=slots, heap_per_rank=heap)


def local_insert(
    key: int,
    slot: int,
    table: np.ndarray,
    chain: np.ndarray,
    heap: np.ndarray,
    meta: np.ndarray,
) -> bool:
    """Owner-side insert (two-sided variant); returns True on collision.

    Mirrors the one-sided algorithm exactly: claim the slot if empty,
    otherwise allocate a heap element and push it at the head of the slot's
    chain.
    """
    if table[slot] == EMPTY:
        table[slot] = key
        return False
    idx = int(meta[0])
    if idx >= len(heap) // 2:
        raise RuntimeError("overflow heap exhausted; grow heap_per_rank")
    meta[0] = idx + 1
    prev = int(chain[slot])
    chain[slot] = idx + 1  # 1-based
    heap[2 * idx] = key
    heap[2 * idx + 1] = prev
    return True


def collect_values(
    table: np.ndarray, heap: np.ndarray, meta: np.ndarray
) -> list[int]:
    """All stored keys (table slots + allocated heap entries)."""
    vals = [int(v) for v in table if v != EMPTY]
    used = int(meta[0])
    vals.extend(int(heap[2 * i]) for i in range(used) if heap[2 * i] != EMPTY)
    return vals


def chain_lengths(chain: np.ndarray, heap: np.ndarray) -> list[int]:
    """Length of each slot's overflow chain; raises on a broken chain."""
    out = []
    heap_len = len(heap) // 2
    for head in chain:
        n, cur, seen = 0, int(head), set()
        while cur:
            if cur in seen or not 1 <= cur <= heap_len:
                raise RuntimeError(f"corrupt overflow chain at entry {cur}")
            seen.add(cur)
            n += 1
            cur = int(heap[2 * (cur - 1) + 1])
        out.append(n)
    return out
