"""Distributed HashTable workload (paper §III-C): random atomic inserts."""

from repro.workloads.hashtable.table import (
    EMPTY,
    TableGeometry,
    chain_lengths,
    collect_values,
    local_insert,
)
from repro.workloads.hashtable.runner import (
    HashTableConfig,
    generate_keys,
    run_hashtable,
)

__all__ = [
    "EMPTY",
    "TableGeometry",
    "chain_lengths",
    "collect_values",
    "local_insert",
    "HashTableConfig",
    "generate_keys",
    "run_hashtable",
]
