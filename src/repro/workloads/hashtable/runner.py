"""Distributed hashtable insert benchmark (paper §III-C).

One million (scaled) unique keys are inserted into a table distributed over
P ranks; the home rank of a key is known only to the sender — the "true
sender's control" pattern.  The program is written once against the
transport :class:`AtomicDomainSpec` channel and branches only on the
backend's ``caps.remote_atomics`` (an algorithm choice, not an op
sequence — see docs/TRANSPORT.md):

* **with remote atomics** (one-sided RMA, GPU SHMEM): an insert is an
  atomic compare-and-swap on the remote slot; a collision allocates an
  overflow element with fetch-and-add and links it with an atomic swap,
  exactly the paper's CAS / increment / second-atomic sequence.  No
  synchronisation until the end of all inserts — msg/sync is the total
  insert count.
* **without** (two-sided): each insert travels as a ``(ID, elem, pos)``
  triplet (3 words, per Table II) to its owner, which applies it locally;
  ranks synchronise every P inserts (Table II's P messages per sync), so
  each round costs a ~log2(P) termination exchange on top of the messages —
  this is the log-P per-insert growth the paper's §III-C analysis assigns
  to the two-sided design, and why one-sided wins at scale but loses at
  P = 2 (1.1 us/message vs a 2 us CAS).

Paper-fidelity note (DESIGN.md §2): the paper's prose has every insert
broadcast to all P-1 peers while its cost model counts ~log2(P) message
times per insert; we implement owner-routed triplets with per-round
synchronisation, which reproduces the cost model (and the measured 5x /
inverted-at-P=2 results) rather than the prose's broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.comm.base import OpCounter
from repro.ir import ops as O
from repro.ir.lower import run_program
from repro.ir.program import IRProgram, Region, static_program
from repro.machines.base import MachineModel
from repro.transport import AtomicDomainSpec, SpaceSpec
from repro.workloads.base import WorkloadResult
from repro.workloads.hashtable.table import (
    EMPTY,
    TableGeometry,
    collect_values,
    local_insert,
)

__all__ = [
    "HashTableConfig",
    "build_hashtable_program",
    "generate_keys",
    "run_hashtable",
]


@dataclass(frozen=True)
class HashTableConfig:
    """Benchmark parameters (paper: one million inserts in total)."""

    total_inserts: int = 20_000
    load_factor: float = 0.6
    seed: int = 0
    mode: str = "execute"  # table ops are cheap; execute by default
    # Two-sided: inserts per rank between synchronisation rounds.  One
    # insert per rank per round matches Table II (P messages per sync
    # globally) and makes the log2(P) round-synchronisation cost dominate
    # at high P — the paper's two-sided scaling penalty.
    sync_window: int = 1

    def __post_init__(self) -> None:
        if self.total_inserts < 1:
            raise ValueError("total_inserts must be >= 1")
        if not 0 < self.load_factor <= 1:
            raise ValueError("load_factor in (0, 1]")
        if self.mode not in ("simulate", "execute"):
            raise ValueError(f"mode must be simulate|execute, got {self.mode!r}")
        if self.sync_window < 1:
            raise ValueError("sync_window must be >= 1")


def generate_keys(cfg: HashTableConfig, nranks: int) -> list[np.ndarray]:
    """Unique nonzero random keys, pre-partitioned per inserting rank.

    Keys are drawn from a 62-bit space: sequential keys under the
    multiplicative hash form a low-discrepancy sequence with artificially
    few collisions, which would understate the overflow-chain path.
    """
    rng = np.random.default_rng(cfg.seed)
    draw = rng.integers(1, 1 << 62, size=2 * cfg.total_inserts + 16, dtype=np.int64)
    keys = np.unique(draw)[: cfg.total_inserts]
    if len(keys) < cfg.total_inserts:
        raise RuntimeError("key draw collision burst; widen the draw")
    keys = rng.permutation(keys)
    per = cfg.total_inserts // nranks
    out = []
    start = 0
    for r in range(nranks):
        take = per + (1 if r < cfg.total_inserts % nranks else 0)
        out.append(keys[start : start + take])
        start += take
    return out


# ---------------------------------------------------------------------------
# the one program (runtime comes from the channel's backend)
# ---------------------------------------------------------------------------


def _domain_spec(geom: TableGeometry) -> AtomicDomainSpec:
    return AtomicDomainSpec(
        spaces={
            "table": SpaceSpec(geom.slots_per_rank, dtype=np.int64, fill=EMPTY),
            "chain": SpaceSpec(geom.slots_per_rank, dtype=np.int64, fill=0),
            "heap": SpaceSpec(2 * geom.heap_per_rank, dtype=np.int64, fill=EMPTY),
            "meta": SpaceSpec(1, dtype=np.int64, fill=0),
        }
    )


def _atomics_body(geom: TableGeometry, keys_by_rank):
    """Sender's-control inserts: CAS / increment / second-atomic.

    Dynamic IR body — the CAS result steers collision handling, so the
    op stream only exists at run time (passes skip it; the Emitter
    still lowers and counts every op)."""

    def body(ctx, em, state):
        yield from em.barrier()
        t0 = ctx.sim.now
        collisions = 0
        for key in keys_by_rank[ctx.rank]:
            key = int(key)
            r, s = geom.locate(key)
            old = yield from em.cas("table", r, s, EMPTY, key)
            if old != EMPTY:
                collisions += 1
                idx = yield from em.faa("meta", r, 0, 1)
                if idx >= geom.heap_per_rank:
                    raise RuntimeError("overflow heap exhausted at target rank")
                # Link in at the head of the slot's chain: swap the head,
                # then publish the (key, next) pair ordered before any
                # subsequent op from this origin.
                prev = yield from em.swap("chain", r, s, idx + 1)
                yield from em.publish(
                    "heap", r, np.array([key, prev], dtype=np.int64), offset=2 * idx
                )
        insert_time = ctx.sim.now - t0
        yield from em.barrier()
        return {"time": insert_time, "collisions": collisions}

    return body


def _insert_fn(key: int, s: int):
    return lambda st: local_insert(
        key, s, st["table"], st["chain"], st["heap"], st["meta"]
    )


def _recv_handler(state: dict, payload) -> None:
    rid, key, s = payload
    if rid != state["ctx"].rank:
        raise RuntimeError("triplet routed to the wrong owner")
    local_insert(key, s, state["table"], state["chain"], state["heap"],
                 state["meta"])


def build_hashtable_program(
    runtime: str, geom: TableGeometry, keys_by_rank, incoming_per_round,
    window: int, nranks: int,
) -> IRProgram:
    """Emit the insert pattern as IR; the algorithm (atomics vs
    owner-routed triplets) branches on the backend's caps exactly as the
    hand-written program branched on ``ep.caps.remote_atomics``."""
    from repro.transport.registry import get_backend

    spec = _domain_spec(geom)
    meta = {"total_keys": sum(len(k) for k in keys_by_rank), "window": window}
    if get_backend(runtime).caps.remote_atomics:
        return IRProgram(
            name="hashtable",
            spec=spec,
            nranks=nranks,
            runtime=runtime,
            body=_atomics_body(geom, keys_by_rank),
            meta=meta,
        )

    # Owner-routed triplets with per-round synchronisation: one region
    # per round, then a drain region (inside the timed window) and the
    # trailing barrier in the epilogue (outside it) — matching the
    # hand-written measurement exactly.
    def setup(ctx, chan, ep, state):
        for space in ("table", "chain", "heap", "meta"):
            state[space] = ep.local(space)

    nrounds = len(incoming_per_round[0]) if nranks else 0
    regions = []
    for rnd in range(nrounds):
        body = []
        for rank in range(nranks):
            my_keys = keys_by_rank[rank]
            lo, hi = rnd * window, min((rnd + 1) * window, len(my_keys))
            ops: list[O.Op] = []
            for key in my_keys[lo:hi]:
                key = int(key)
                r, s = geom.locate(key)
                if r == rank:
                    ops.append(O.Compute(nbytes=64.0, fn=_insert_fn(key, s)))
                else:
                    ops.append(O.TripletSend(r, 24.0, 1, payload=(r, key, s)))
            expected = incoming_per_round[rank][rnd]
            for _ in range(expected):
                # Hot-loop receive: GUPS-style codes poll MPI_Recv in a
                # tight loop rather than descheduling per message.
                ops.append(O.TripletRecv(1, on_payload=_recv_handler))
                ops.append(O.Compute(nbytes=64.0))
            # Round synchronisation: termination/quiescence exchange.
            ops.append(O.AllreduceSum(float(expected)))
            body.append(tuple(ops))
        regions.append(Region(f"round{rnd}", tuple(body)))
    regions.append(Region("drain", tuple((O.MsgDrain(),) for _ in range(nranks))))

    def finalize(ctx, state, elapsed):
        return {"time": elapsed, "collisions": 0}

    return static_program(
        "hashtable",
        spec,
        nranks,
        runtime,
        prologue=[O.Barrier()],
        regions=regions,
        epilogue=[O.Barrier()],
        setup=setup,
        finalize=finalize,
        meta=meta,
    )


def _plan_rounds(
    geom: TableGeometry, keys_by_rank: list[np.ndarray], nranks: int, window: int
) -> list[list[int]]:
    """Per-rank, per-round incoming message counts (static schedule).

    Receivers must know how many triplets to expect each round; computing
    the counts up front models the counting handshake real codes do without
    simulating a termination-detection protocol.
    """
    nrounds = max(
        (len(k) + window - 1) // window for k in keys_by_rank
    ) if keys_by_rank else 0
    counts = [[0] * nrounds for _ in range(nranks)]
    for src in range(nranks):
        keys = keys_by_rank[src]
        for i, key in enumerate(keys):
            r, _s = geom.locate(int(key))
            if r != src:
                counts[r][i // window] += 1
    return counts


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def run_hashtable(
    machine: MachineModel,
    runtime: str,
    cfg: HashTableConfig,
    nranks: int,
    *,
    placement: str | None = None,
) -> WorkloadResult:
    """Run the distributed hashtable benchmark.

    ``runtime`` is a backend name from :mod:`repro.transport`.
    Execute-mode verification data (all stored values) is returned in
    ``extras["values"]``; ``extras["gups"]`` holds giga-updates/s.
    """
    geom = TableGeometry.for_inserts(
        nranks, cfg.total_inserts, load_factor=cfg.load_factor
    )
    keys_by_rank = generate_keys(cfg, nranks)
    if placement is None:
        placement = "spread" if machine.is_gpu_machine else "block"
    incoming = _plan_rounds(geom, keys_by_rank, nranks, cfg.sync_window)
    program = build_hashtable_program(
        runtime, geom, keys_by_rank, incoming, cfg.sync_window, nranks
    )
    run = run_program(machine, program, placement=placement)
    job, chan, result = run.job, run.chan, run.result
    tables = [chan.array("table", r) for r in range(nranks)]
    chains = [chan.array("chain", r) for r in range(nranks)]
    heaps = [chan.array("heap", r) for r in range(nranks)]
    metas = [chan.array("meta", r) for r in range(nranks)]
    collisions = (
        sum(r["collisions"] for r in result.results)
        if chan.caps.remote_atomics
        else None
    )
    times = [r["time"] for r in result.results]
    elapsed = max(times)
    values: list[int] = []
    for r in range(nranks):
        values.extend(collect_values(tables[r], heaps[r], metas[r]))
    merged = reduce(OpCounter.merge, result.per_rank, OpCounter())
    extras = {
        "geometry": geom,
        "values": values,
        "gups": cfg.total_inserts / elapsed / 1e9,
        "per_insert_us": elapsed / cfg.total_inserts * 1e6 * nranks,
        "collisions": collisions,
        "chains": chains,
        "heaps": heaps,
    }
    return WorkloadResult(
        workload="hashtable",
        machine=machine.name,
        runtime=job.runtime_name,
        variant=job.runtime_name,
        nranks=nranks,
        time=elapsed,
        counters=merged,
        per_rank=result.per_rank,
        extras=extras,
    )
