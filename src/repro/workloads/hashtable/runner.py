"""Distributed hashtable insert benchmark (paper §III-C).

One million (scaled) unique keys are inserted into a table distributed over
P ranks; the home rank of a key is known only to the sender — the "true
sender's control" pattern.

* **one-sided** (CPU MPI RMA or GPU SHMEM): an insert is an atomic
  compare-and-swap on the remote slot; a collision allocates an overflow
  element with fetch-and-add and links it with an atomic swap, exactly the
  paper's CAS / increment / second-atomic sequence.  No synchronisation
  until the end of all inserts — msg/sync is the total insert count.
* **two-sided**: each insert travels as a ``(ID, elem, pos)`` triplet
  (3 words, per Table II) to its owner, which applies it locally; ranks
  synchronise every P inserts (Table II's P messages per sync), so each
  round costs a ~log2(P) termination exchange on top of the messages —
  this is the log-P per-insert growth the paper's §III-C analysis assigns
  to the two-sided design, and why one-sided wins at scale but loses at
  P = 2 (1.1 us/message vs a 2 us CAS).

Paper-fidelity note (DESIGN.md §2): the paper's prose has every insert
broadcast to all P-1 peers while its cost model counts ~log2(P) message
times per insert; we implement owner-routed triplets with per-round
synchronisation, which reproduces the cost model (and the measured 5x /
inverted-at-P=2 results) rather than the prose's broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.comm.base import OpCounter
from repro.comm.job import Job
from repro.machines.base import MachineModel
from repro.workloads.base import WorkloadResult
from repro.workloads.hashtable.table import (
    EMPTY,
    TableGeometry,
    collect_values,
    local_insert,
)

__all__ = ["HashTableConfig", "run_hashtable", "generate_keys"]


@dataclass(frozen=True)
class HashTableConfig:
    """Benchmark parameters (paper: one million inserts in total)."""

    total_inserts: int = 20_000
    load_factor: float = 0.6
    seed: int = 0
    mode: str = "execute"  # table ops are cheap; execute by default
    # Two-sided: inserts per rank between synchronisation rounds.  One
    # insert per rank per round matches Table II (P messages per sync
    # globally) and makes the log2(P) round-synchronisation cost dominate
    # at high P — the paper's two-sided scaling penalty.
    sync_window: int = 1

    def __post_init__(self) -> None:
        if self.total_inserts < 1:
            raise ValueError("total_inserts must be >= 1")
        if not 0 < self.load_factor <= 1:
            raise ValueError("load_factor in (0, 1]")
        if self.mode not in ("simulate", "execute"):
            raise ValueError(f"mode must be simulate|execute, got {self.mode!r}")
        if self.sync_window < 1:
            raise ValueError("sync_window must be >= 1")


def generate_keys(cfg: HashTableConfig, nranks: int) -> list[np.ndarray]:
    """Unique nonzero random keys, pre-partitioned per inserting rank.

    Keys are drawn from a 62-bit space: sequential keys under the
    multiplicative hash form a low-discrepancy sequence with artificially
    few collisions, which would understate the overflow-chain path.
    """
    rng = np.random.default_rng(cfg.seed)
    draw = rng.integers(1, 1 << 62, size=2 * cfg.total_inserts + 16, dtype=np.int64)
    keys = np.unique(draw)[: cfg.total_inserts]
    if len(keys) < cfg.total_inserts:
        raise RuntimeError("key draw collision burst; widen the draw")
    keys = rng.permutation(keys)
    per = cfg.total_inserts // nranks
    out = []
    start = 0
    for r in range(nranks):
        take = per + (1 if r < cfg.total_inserts % nranks else 0)
        out.append(keys[start : start + take])
        start += take
    return out


# ---------------------------------------------------------------------------
# one-sided (CPU RMA and GPU SHMEM share this program; the context supplies
# the op costs)
# ---------------------------------------------------------------------------


def _program_one_sided(ctx, geom: TableGeometry, my_keys, wins):
    table_w, chain_w, heap_w, meta_w = wins
    h_table = table_w.handle(ctx)
    h_chain = chain_w.handle(ctx)
    h_heap = heap_w.handle(ctx)
    h_meta = meta_w.handle(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    collisions = 0
    for key in my_keys:
        key = int(key)
        r, s = geom.locate(key)
        old = yield from h_table.cas_blocking(r, s, EMPTY, key)
        if old != EMPTY:
            collisions += 1
            idx = yield from h_meta.faa_blocking(r, 0, 1)
            if idx >= geom.heap_per_rank:
                raise RuntimeError("overflow heap exhausted at target rank")
            # Link in at the head of the slot's chain: swap the head, then
            # publish the (key, next) pair; flush_local orders the element
            # write before any subsequent op from this origin.
            swap_req = yield from h_chain.fetch_and_replace(r, s, idx + 1)
            prev = yield from ctx.wait(swap_req)
            yield from h_heap.put(
                r, np.array([key, prev], dtype=np.int64), offset=2 * idx
            )
            yield from h_heap.flush_local(r)
    insert_time = ctx.sim.now - t0
    yield from ctx.barrier()
    return {"time": insert_time, "collisions": collisions}


# ---------------------------------------------------------------------------
# two-sided
# ---------------------------------------------------------------------------


def _program_two_sided(ctx, geom: TableGeometry, keys_by_rank, incoming_per_round,
                       window: int, state):
    table, chain, heap, meta = state
    my_keys = keys_by_rank[ctx.rank]
    nrounds = len(incoming_per_round[ctx.rank])
    yield from ctx.barrier()
    t0 = ctx.sim.now
    send_reqs = []
    for rnd in range(nrounds):
        lo, hi = rnd * window, min((rnd + 1) * window, len(my_keys))
        for key in my_keys[lo:hi]:
            key = int(key)
            r, s = geom.locate(key)
            if r == ctx.rank:
                local_insert(key, s, table, chain, heap, meta)
                yield from ctx.compute(nbytes=64.0)
            else:
                req = yield from ctx.isend(
                    r, nbytes=24.0, tag=1, payload=(r, key, s)
                )
                send_reqs.append(req)
        expected = incoming_per_round[ctx.rank][rnd]
        for _ in range(expected):
            # Hot-loop receive: GUPS-style codes poll MPI_Recv in a tight
            # loop rather than descheduling per message.
            (payload, _status) = yield from ctx.recv_poll(tag=1)
            rid, key, s = payload
            if rid != ctx.rank:
                raise RuntimeError("triplet routed to the wrong owner")
            local_insert(key, s, table, chain, heap, meta)
            yield from ctx.compute(nbytes=64.0)
        # Round synchronisation: termination/quiescence exchange.
        yield from ctx.allreduce_sum(float(expected))
    if send_reqs:
        yield from ctx.waitall(send_reqs)
    insert_time = ctx.sim.now - t0
    yield from ctx.barrier()
    return {"time": insert_time, "collisions": 0}


def _plan_rounds(
    geom: TableGeometry, keys_by_rank: list[np.ndarray], nranks: int, window: int
) -> list[list[int]]:
    """Per-rank, per-round incoming message counts (static schedule).

    Receivers must know how many triplets to expect each round; computing
    the counts up front models the counting handshake real codes do without
    simulating a termination-detection protocol.
    """
    nrounds = max(
        (len(k) + window - 1) // window for k in keys_by_rank
    ) if keys_by_rank else 0
    counts = [[0] * nrounds for _ in range(nranks)]
    for src in range(nranks):
        keys = keys_by_rank[src]
        for i, key in enumerate(keys):
            r, _s = geom.locate(int(key))
            if r != src:
                counts[r][i // window] += 1
    return counts


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def run_hashtable(
    machine: MachineModel,
    runtime: str,
    cfg: HashTableConfig,
    nranks: int,
    *,
    placement: str | None = None,
) -> WorkloadResult:
    """Run the distributed hashtable benchmark.

    ``runtime``: ``one_sided`` (CPU RMA), ``shmem`` (GPU), or ``two_sided``.
    Execute-mode verification data (all stored values) is returned in
    ``extras["values"]``; ``extras["gups"]`` holds giga-updates/s.
    """
    geom = TableGeometry.for_inserts(
        nranks, cfg.total_inserts, load_factor=cfg.load_factor
    )
    keys_by_rank = generate_keys(cfg, nranks)
    if placement is None:
        placement = "spread" if machine.is_gpu_machine else "block"
    job = Job(machine, nranks, runtime, placement=placement)
    if runtime in ("one_sided", "shmem"):
        table_w = job.window(geom.slots_per_rank, dtype=np.int64, fill=EMPTY)
        chain_w = job.window(geom.slots_per_rank, dtype=np.int64, fill=0)
        heap_w = job.window(2 * geom.heap_per_rank, dtype=np.int64, fill=EMPTY)
        meta_w = job.window(1, dtype=np.int64, fill=0)
        wins = (table_w, chain_w, heap_w, meta_w)
        result = job.run(
            lambda ctx: _program_one_sided(ctx, geom, keys_by_rank[ctx.rank], wins)
        )
        tables = [table_w.local(r) for r in range(nranks)]
        heaps = [heap_w.local(r) for r in range(nranks)]
        metas = [meta_w.local(r) for r in range(nranks)]
        chains = [chain_w.local(r) for r in range(nranks)]
        collisions = sum(r["collisions"] for r in result.results)
    elif runtime == "two_sided":
        tables = [np.zeros(geom.slots_per_rank, dtype=np.int64) for _ in range(nranks)]
        chains = [np.zeros(geom.slots_per_rank, dtype=np.int64) for _ in range(nranks)]
        heaps = [
            np.zeros(2 * geom.heap_per_rank, dtype=np.int64) for _ in range(nranks)
        ]
        metas = [np.zeros(1, dtype=np.int64) for _ in range(nranks)]
        incoming = _plan_rounds(geom, keys_by_rank, nranks, cfg.sync_window)
        result = job.run(
            lambda ctx: _program_two_sided(
                ctx,
                geom,
                keys_by_rank,
                incoming,
                cfg.sync_window,
                (
                    tables[ctx.rank],
                    chains[ctx.rank],
                    heaps[ctx.rank],
                    metas[ctx.rank],
                ),
            )
        )
        collisions = None
    else:
        raise ValueError(f"unknown hashtable runtime {runtime!r}")
    times = [r["time"] for r in result.results]
    elapsed = max(times)
    values: list[int] = []
    for r in range(nranks):
        values.extend(collect_values(tables[r], heaps[r], metas[r]))
    merged = reduce(OpCounter.merge, result.per_rank, OpCounter())
    extras = {
        "geometry": geom,
        "values": values,
        "gups": cfg.total_inserts / elapsed / 1e9,
        "per_insert_us": elapsed / cfg.total_inserts * 1e6 * nranks,
        "collisions": collisions,
        "chains": chains,
        "heaps": heaps,
    }
    return WorkloadResult(
        workload="hashtable",
        machine=machine.name,
        runtime=runtime,
        variant=runtime,
        nranks=nranks,
        time=elapsed,
        counters=merged,
        per_rank=result.per_rank,
        extras=extras,
    )
