"""2D block-cyclic layout and the static communication plan for SpTRSV.

SuperLU_DIST distributes the supernodal blocks over a ``pr x pc`` process
grid block-cyclically: block ``(I, J)`` lives on process
``(I mod pr) * pc + (J mod pc)``.  Because the nonzero structure is known
after factorisation, every message of the solve is known in advance — the
paper's Table II calls the SpTRSV pairs "deterministic & variable".  The
:class:`CommPlan` enumerates them: who sends which supernode's solution or
partial sum to whom, and (for the one-sided variants) which receive slot
each message owns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.workloads.sptrsv.matrix import SupernodalMatrix

__all__ = ["BlockCyclicLayout", "CommPlan", "ExpectedMsg"]

X_MSG = 0  # a solved subvector x_J travelling down its block column
LSUM_MSG = 1  # a partial row sum travelling to the diagonal owner


@dataclass(frozen=True)
class BlockCyclicLayout:
    """``pr x pc`` process grid with block-cyclic block ownership."""

    pr: int
    pc: int

    def __post_init__(self) -> None:
        if self.pr < 1 or self.pc < 1:
            raise ValueError(f"process grid must be positive, got {self.pr}x{self.pc}")

    @classmethod
    def square_ish(cls, nranks: int) -> "BlockCyclicLayout":
        pr = int(math.isqrt(nranks))
        while nranks % pr:
            pr -= 1
        return cls(pr=pr, pc=nranks // pr)

    @property
    def nranks(self) -> int:
        return self.pr * self.pc

    def owner(self, I: int, J: int) -> int:
        """Rank owning block (I, J)."""
        return (I % self.pr) * self.pc + (J % self.pc)

    def diag_owner(self, J: int) -> int:
        return self.owner(J, J)


@dataclass(frozen=True)
class ExpectedMsg:
    """One statically known incoming message at some rank."""

    kind: int  # X_MSG or LSUM_MSG
    supernode: int  # J for x messages, I (target row) for lsum
    source: int  # sending rank
    words: int  # payload length in 8-byte words
    slot: int  # receive-slot index at the destination (one-sided)
    block: tuple[int, int] | None = None  # originating block for lsum


@dataclass
class CommPlan:
    """Everything each rank must know before the solve starts.

    Built once per (matrix, layout); shared read-only by all rank programs.
    """

    matrix: SupernodalMatrix
    layout: BlockCyclicLayout
    # rank -> expected incoming messages, in slot order.
    expected: dict[int, list[ExpectedMsg]] = field(default_factory=dict)
    # rank -> {(kind, supernode, source) -> slot index} for senders.
    slot_of: dict[int, dict[tuple[int, int, int, tuple | None], int]] = field(
        default_factory=dict
    )
    # (J) -> ranks (other than diag owner) owning blocks in column J.
    x_targets: dict[int, list[int]] = field(default_factory=dict)
    # diag supernode J -> number of contributions (local + remote blocks).
    contrib_total: dict[int, int] = field(default_factory=dict)
    # rank -> blocks (I, J) it owns (I > J, off-diagonal).
    owned_blocks: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    # rank -> diag supernodes it owns.
    owned_diags: dict[int, list[int]] = field(default_factory=dict)

    @classmethod
    def build(cls, matrix: SupernodalMatrix, layout: BlockCyclicLayout) -> "CommPlan":
        plan = cls(matrix=matrix, layout=layout)
        P = layout.nranks
        plan.expected = {r: [] for r in range(P)}
        plan.slot_of = {r: {} for r in range(P)}
        plan.owned_blocks = {r: [] for r in range(P)}
        plan.owned_diags = {r: [] for r in range(P)}

        for J in range(matrix.n_supernodes):
            diag_rank = layout.diag_owner(J)
            plan.owned_diags[diag_rank].append(J)
            col = matrix.column_blocks(J)
            plan.contrib_total[J] = len(matrix.row_blocks(J))
            # x_J fan-out: every rank owning a block in column J (I > J).
            targets = sorted(
                {layout.owner(I, J) for I in col} - {diag_rank}
            )
            plan.x_targets[J] = targets
            for I in col:
                plan.owned_blocks[layout.owner(I, J)].append((I, J))

        def add_expected(dst: int, msg_kind: int, sn: int, src: int, words: int,
                         block=None) -> None:
            slot = len(plan.expected[dst])
            plan.expected[dst].append(
                ExpectedMsg(
                    kind=msg_kind,
                    supernode=sn,
                    source=src,
                    words=words,
                    slot=slot,
                    block=block,
                )
            )
            plan.slot_of[dst][(msg_kind, sn, src, block)] = slot

        # Enumerate messages in deterministic (supernode-major) order.
        for J in range(matrix.n_supernodes):
            diag_rank = layout.diag_owner(J)
            for dst in plan.x_targets[J]:
                add_expected(dst, X_MSG, J, diag_rank, matrix.widths[J])
            # Each off-diagonal block (I, J) produces one lsum message to
            # the diagonal owner of row I, unless it lives there already.
            for I in matrix.column_blocks(J):
                src = layout.owner(I, J)
                dst = layout.diag_owner(I)
                if src != dst:
                    add_expected(
                        dst, LSUM_MSG, I, src, matrix.widths[I], block=(I, J)
                    )
        return plan

    # -- per-rank query helpers ----------------------------------------------

    def expected_count(self, rank: int) -> int:
        return len(self.expected.get(rank, []))

    def window_words(self, rank: int) -> int:
        """Total receive-buffer words needed by ``rank`` (one-sided)."""
        return sum(m.words for m in self.expected.get(rank, []))

    def slot_offsets(self, rank: int) -> list[int]:
        """Word offset of each slot in the rank's receive window."""
        offs = [0]
        for m in self.expected.get(rank, []):
            offs.append(offs[-1] + m.words)
        return offs[:-1]

    def describe(self) -> str:
        m, lay = self.matrix, self.layout
        total_msgs = sum(len(v) for v in self.expected.values())
        sizes = [msg.words * 8 for v in self.expected.values() for msg in v]
        lines = [
            f"SpTRSV plan: n={m.n}, {m.n_supernodes} supernodes, nnz={m.nnz}",
            f"  process grid {lay.pr}x{lay.pc} = {lay.nranks} ranks",
            f"  remote messages: {total_msgs}",
        ]
        if sizes:
            lines.append(
                f"  message sizes: min={min(sizes)} B, max={max(sizes)} B, "
                f"avg={sum(sizes) / len(sizes):.0f} B"
            )
        lines.append(f"  DAG critical path: {m.critical_path_length()} supernodes")
        return "\n".join(lines)
