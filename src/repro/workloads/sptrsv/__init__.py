"""SpTRSV workload (paper §III-B): supernodal DAG solve, three comm variants."""

from repro.workloads.sptrsv.matrix import (
    MatrixSpec,
    SupernodalMatrix,
    generate_matrix,
)
from repro.workloads.sptrsv.plan import (
    LSUM_MSG,
    X_MSG,
    BlockCyclicLayout,
    CommPlan,
    ExpectedMsg,
)
from repro.workloads.sptrsv.runner import SpTrsvConfig, reference_solve, run_sptrsv

__all__ = [
    "MatrixSpec",
    "SupernodalMatrix",
    "generate_matrix",
    "BlockCyclicLayout",
    "CommPlan",
    "ExpectedMsg",
    "X_MSG",
    "LSUM_MSG",
    "SpTrsvConfig",
    "reference_solve",
    "run_sptrsv",
]
