"""Synthetic supernodal lower-triangular matrices for SpTRSV.

The paper solves ``L x = b`` where ``L`` comes from SuperLU_DIST factoring an
M3D-C1 fusion matrix (126K rows, 1e8 nonzeros after fill-in) — proprietary
pipeline we cannot rerun, so this module generates matrices with the same
*communication-relevant* structure (DESIGN.md §2):

* a **supernode partition** of the columns (a supernode = consecutive
  columns sharing one nonzero structure, the unit of SuperLU messaging);
* a 2D nonzero **block pattern** over supernode pairs whose density decays
  with distance from the diagonal (typical of factored sparse systems);
* unit-lower-triangular numerics (as L from LU), well conditioned by
  construction, so execute-mode solves are verifiable against scipy;
* supernode widths tuned so messages span ~24 B to ~1 KB, averaging
  ~100 words — the range Table II and §III-B quote.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["SupernodalMatrix", "generate_matrix", "MatrixSpec"]


@dataclass(frozen=True)
class MatrixSpec:
    """Generator parameters.

    ``width_lo``/``width_hi`` bound supernode widths (in columns == solution
    words per x-message).  ``block_density`` is the base probability that a
    sub-diagonal supernode block is nonzero; it decays exponentially with
    block distance over ``density_range`` supernodes.
    """

    n_supernodes: int = 64
    width_lo: int = 3
    width_hi: int = 130
    block_density: float = 0.28
    density_range: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_supernodes < 2:
            raise ValueError("need at least 2 supernodes")
        if not 1 <= self.width_lo <= self.width_hi:
            raise ValueError(f"bad width range [{self.width_lo}, {self.width_hi}]")
        if not 0 < self.block_density <= 1:
            raise ValueError(f"block_density must be in (0, 1], got {self.block_density}")
        if self.density_range <= 0:
            raise ValueError("density_range must be positive")


@dataclass
class SupernodalMatrix:
    """A lower-triangular matrix stored as dense supernodal blocks.

    Attributes:
        widths: supernode widths (columns per supernode).
        offsets: prefix sums — supernode ``J`` covers rows/cols
            ``offsets[J]:offsets[J+1]``.
        blocks: ``(I, J) -> dense block`` for ``I >= J``; the diagonal
            blocks ``(J, J)`` are unit lower triangular.
    """

    widths: list[int]
    offsets: list[int]
    blocks: dict[tuple[int, int], np.ndarray] = field(repr=False, default_factory=dict)

    @property
    def n(self) -> int:
        return self.offsets[-1]

    @property
    def n_supernodes(self) -> int:
        return len(self.widths)

    @property
    def nnz(self) -> int:
        return int(sum(b.size for b in self.blocks.values()))

    def sn_range(self, j: int) -> tuple[int, int]:
        return self.offsets[j], self.offsets[j + 1]

    def column_blocks(self, j: int) -> list[int]:
        """Row supernode indices I > J with a nonzero block (I, J)."""
        return sorted(I for (I, J) in self.blocks if J == j and I > j)

    def row_blocks(self, i: int) -> list[int]:
        """Column supernode indices J < I with a nonzero block (I, J)."""
        return sorted(J for (I, J) in self.blocks if I == i and J < i)

    def message_sizes(self) -> np.ndarray:
        """Bytes per x-message (one solution subvector per supernode)."""
        return np.array([w * 8 for w in self.widths], dtype=float)

    def to_csr(self) -> sp.csr_matrix:
        """Assemble the full sparse matrix (reference solves, tests)."""
        rows, cols, vals = [], [], []
        for (I, J), block in self.blocks.items():
            r0, _ = self.sn_range(I)
            c0, _ = self.sn_range(J)
            if I == J:
                # Only the lower triangle (incl. unit diagonal) is stored.
                ii, jj = np.tril_indices(block.shape[0])
                rows.append(r0 + ii)
                cols.append(c0 + jj)
                vals.append(block[ii, jj])
            else:
                ii, jj = np.indices(block.shape)
                rows.append(r0 + ii.ravel())
                cols.append(c0 + jj.ravel())
                vals.append(block.ravel())
        return sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.n, self.n),
        )

    def dag_edges(self) -> list[tuple[int, int]]:
        """Supernode dependency edges J -> I (x_J feeds the solve of x_I)."""
        return sorted((J, I) for (I, J) in self.blocks if I > J)

    def critical_path_length(self) -> int:
        """Longest chain in the supernodal DAG (solver's serial depth)."""
        depth = [0] * self.n_supernodes
        for J, I in self.dag_edges():  # sorted: J ascending
            depth[I] = max(depth[I], depth[J] + 1)
        return max(depth) + 1 if depth else 0


def generate_matrix(spec: MatrixSpec = MatrixSpec()) -> SupernodalMatrix:
    """Generate a well-conditioned supernodal lower-triangular matrix."""
    rng = np.random.default_rng(spec.seed)
    widths = rng.integers(spec.width_lo, spec.width_hi + 1, spec.n_supernodes)
    widths = [int(w) for w in widths]
    offsets = [0]
    for w in widths:
        offsets.append(offsets[-1] + w)

    blocks: dict[tuple[int, int], np.ndarray] = {}
    for J in range(spec.n_supernodes):
        w = widths[J]
        # Unit lower-triangular diagonal block with small off-diagonals
        # (LU's L is unit triangular; small entries keep solves stable).
        diag = np.tril(rng.uniform(-0.4, 0.4, (w, w)), k=-1)
        np.fill_diagonal(diag, 1.0)
        blocks[(J, J)] = diag
        for I in range(J + 1, spec.n_supernodes):
            p = spec.block_density * np.exp(-(I - J - 1) / spec.density_range)
            if rng.random() < p:
                scale = 0.5 / max(widths[J], 1)
                blocks[(I, J)] = rng.uniform(-scale, scale, (widths[I], w))
    # Guarantee the DAG is connected enough to exercise communication: every
    # supernode after the first depends on at least its predecessor.
    for I in range(1, spec.n_supernodes):
        if not any((I, J) in blocks for J in range(I)):
            scale = 0.5 / max(widths[I - 1], 1)
            blocks[(I, I - 1)] = rng.uniform(
                -scale, scale, (widths[I], widths[I - 1])
            )
    return SupernodalMatrix(widths=widths, offsets=offsets, blocks=blocks)
