"""Distributed supernodal sparse triangular solve (paper §III-B).

The solve of ``L x = b`` walks the supernodal DAG.  For each supernode J:

* the **diagonal owner** of J solves ``L_JJ x_J = b_J - acc_J`` once all
  contributions to row J have arrived, then fans ``x_J`` out to the ranks
  owning blocks in column J;
* each such rank computes the block update ``L_IJ x_J`` and sends it as a
  partial sum (lsum) to the diagonal owner of row I.

Message sizes are the supernode widths (24 B .. ~1 KB, avg ~100 words) and
every message is followed by work that depends on it — one message per
synchronization, the paper's latency-bound extreme.

The solver is written once against the transport :class:`MailboxSpec`
channel (``send`` / ``expect`` / ``recv`` / ``drain``); the runtime backend
supplies the op sequence — two-sided Isend + Recv(ANY_SOURCE), the paper's
4-op one-sided emulation with the Listing-1 polling receiver (whose
per-wake scan over the remaining slots is the overhead that stops
one-sided SpTRSV from scaling), or fused GPU put-with-signal +
``wait_until_any`` (see docs/TRANSPORT.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque
from functools import reduce

import numpy as np
import scipy.linalg as sla

from repro.comm.base import OpCounter
from repro.ir.lower import run_program
from repro.ir.program import IRProgram
from repro.machines.base import MachineModel
from repro.transport import MailboxMsg, MailboxSpec
from repro.workloads.base import WorkloadResult
from repro.workloads.sptrsv.matrix import SupernodalMatrix
from repro.workloads.sptrsv.plan import (
    LSUM_MSG,
    X_MSG,
    BlockCyclicLayout,
    CommPlan,
)

__all__ = [
    "SpTrsvConfig",
    "build_sptrsv_program",
    "reference_solve",
    "run_sptrsv",
]


@dataclass(frozen=True)
class SpTrsvConfig:
    """Run options for the distributed solve."""

    mode: str = "simulate"  # "simulate" | "execute"

    def __post_init__(self) -> None:
        if self.mode not in ("simulate", "execute"):
            raise ValueError(f"mode must be simulate|execute, got {self.mode!r}")


def reference_solve(matrix: SupernodalMatrix, b: np.ndarray) -> np.ndarray:
    """Serial scipy reference for execute-mode verification."""
    L = matrix.to_csr()
    from scipy.sparse.linalg import spsolve_triangular

    return spsolve_triangular(L.tocsr(), b, lower=True)


# Effective streaming rates of the irregular supernodal kernels (gathers,
# short trsv/gemv calls) — far below STREAM peaks on both architectures.
# The paper observes equal single-GPU times on A100 and V100, consistent
# with a latency-limited effective rate rather than HBM bandwidth.
SPARSE_GPU_BW = 40e9
SPARSE_CPU_BW = 5e9


class _SolveState:
    """Per-rank mutable solver state shared by the three variants."""

    def __init__(self, ctx, em, plan: CommPlan, b: np.ndarray | None,
                 execute: bool):
        self.ctx = ctx
        self.em = em
        self.plan = plan
        self.m = plan.matrix
        self.execute = execute
        self.b = b
        self.eff_bw = SPARSE_GPU_BW if ctx.on_gpu else SPARSE_CPU_BW
        self.x: dict[int, np.ndarray | None] = {}
        self.acc: dict[int, np.ndarray | None] = {}
        self.count: dict[int, int] = {}
        self.ready: deque[int] = deque()
        for J in plan.owned_diags.get(ctx.rank, []):
            self.count[J] = plan.contrib_total[J]
            w = self.m.widths[J]
            self.acc[J] = np.zeros(w) if execute else None
            if self.count[J] == 0:
                self.ready.append(J)
        # Blocks grouped by column for x dispatch.
        self.col_blocks: dict[int, list[int]] = {}
        for I, J in plan.owned_blocks.get(ctx.rank, []):
            self.col_blocks.setdefault(J, []).append(I)

    # -- numerics / modelled compute -----------------------------------------

    def solve_supernode(self, J: int):
        """Triangular solve of the diagonal block (generator: charges time)."""
        w = self.m.widths[J]
        if self.execute:
            lo, hi = self.m.sn_range(J)
            rhs = self.b[lo:hi] - self.acc[J]
            xJ = sla.solve_triangular(
                self.m.blocks[(J, J)], rhs, lower=True, unit_diagonal=True
            )
        else:
            xJ = None
        yield from self.em.compute(seconds=w * w * 4.0 / self.eff_bw)
        self.x[J] = xJ
        return xJ

    def block_update(self, I: int, J: int, xJ):
        """Compute L_IJ @ x_J (generator: charges time)."""
        wi, wj = self.m.widths[I], self.m.widths[J]
        if self.execute:
            u = self.m.blocks[(I, J)] @ xJ
        else:
            u = None
        yield from self.em.compute(seconds=wi * wj * 8.0 / self.eff_bw)
        return u

    def apply_contrib(self, I: int, u) -> bool:
        """Accumulate one contribution to row I; True if I became ready."""
        if self.execute and u is not None:
            self.acc[I] += u
        self.count[I] -= 1
        if self.count[I] < 0:
            raise RuntimeError(f"rank {self.ctx.rank}: too many contributions to {I}")
        return self.count[I] == 0


def _drain_ready(state: _SolveState, send_x, send_lsum):
    """Solve every ready supernode, cascading local work (generator)."""
    plan, ctx = state.plan, state.ctx
    while state.ready:
        J = state.ready.popleft()
        xJ = yield from state.solve_supernode(J)
        # Fan x_J out to remote column owners.
        for dst in plan.x_targets[J]:
            yield from send_x(J, dst, xJ)
        # Handle my own blocks in column J directly.
        yield from _apply_x_locally(state, J, xJ, send_lsum)


def _apply_x_locally(state: _SolveState, J: int, xJ, send_lsum):
    plan, ctx = state.plan, state.ctx
    for I in state.col_blocks.get(J, []):
        u = yield from state.block_update(I, J, xJ)
        dst = plan.layout.diag_owner(I)
        if dst == ctx.rank:
            if state.apply_contrib(I, u):
                state.ready.append(I)
        else:
            yield from send_lsum(I, (I, J), dst, u)


def _dispatch(state: _SolveState, kind: int, sn: int, data, send_lsum):
    """Handle one received message; may enqueue newly ready supernodes."""
    if kind == X_MSG:
        state.x[sn] = data
        yield from _apply_x_locally(state, sn, data, send_lsum)
    elif kind == LSUM_MSG:
        if state.apply_contrib(sn, data):
            state.ready.append(sn)
    else:
        raise RuntimeError(f"unknown message kind {kind}")


# ---------------------------------------------------------------------------
# the one program (runtime comes from the channel's backend)
# ---------------------------------------------------------------------------


def _mailbox_spec(plan: CommPlan, nranks: int, execute: bool) -> MailboxSpec:
    """Receive-slot geometry for the notified-message backends."""
    return MailboxSpec(
        data_words=max((plan.window_words(r) for r in range(nranks)), default=1),
        nslots=max((plan.expected_count(r) for r in range(nranks)), default=1),
        offsets={r: plan.slot_offsets(r) for r in range(nranks)},
        dtype=np.float64,
        signal_dtype=np.int64,
        read_data=execute,
    )


def build_sptrsv_program(
    runtime: str, plan: CommPlan, b, execute: bool, nranks: int
) -> IRProgram:
    """Emit the wavefront solve as a dynamic IR program.

    The op stream is data-dependent — which supernodes become ready, and
    in what order, is only known as messages arrive — so the body drives
    an :class:`repro.ir.lower.Emitter` instead of building static regions
    (passes skip dynamic programs; every op is still lowered and counted
    through the same dispatch).
    """

    def body(ctx, em, state):
        solve = _SolveState(ctx, em, plan, b, execute)

        def send_msg(kind, sn, block, dst, values, words):
            slot = plan.slot_of[dst][(kind, sn, ctx.rank, block)]
            yield from em.send(
                dst,
                slot,
                words=words,
                values=values if execute else None,
                meta=(kind, sn),
                tag=kind,
            )

        def send_x(J, dst, xJ):
            yield from send_msg(X_MSG, J, None, dst, xJ, plan.matrix.widths[J])

        def send_lsum(I, block, dst, u):
            yield from send_msg(LSUM_MSG, I, block, dst, u, plan.matrix.widths[I])

        yield from em.barrier()
        t0 = ctx.sim.now
        yield from _drain_ready(solve, send_x, send_lsum)
        expected = plan.expected[ctx.rank]
        yield from em.expect(
            {
                m.slot: MailboxMsg(
                    slot=m.slot, words=m.words, meta=(m.kind, m.supernode)
                )
                for m in expected
            }
        )
        for _ in range(len(expected)):
            (kind, sn), data = yield from em.recv()
            yield from _dispatch(solve, kind, sn, data, send_lsum)
            yield from _drain_ready(solve, send_x, send_lsum)
        yield from em.drain()
        elapsed = ctx.sim.now - t0
        return {
            "time": elapsed,
            "x": {J: solve.x.get(J) for J in plan.owned_diags.get(ctx.rank, [])},
        }

    return IRProgram(
        name="sptrsv",
        spec=_mailbox_spec(plan, nranks, execute),
        nranks=nranks,
        runtime=runtime,
        body=body,
        meta={"nnz": plan.matrix.nnz, "execute": execute},
    )


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


def run_sptrsv(
    machine: MachineModel,
    runtime: str,
    matrix: SupernodalMatrix,
    nranks: int,
    *,
    cfg: SpTrsvConfig = SpTrsvConfig(),
    layout: BlockCyclicLayout | None = None,
    b: np.ndarray | None = None,
    placement: str | None = None,
) -> WorkloadResult:
    """Run the distributed solve; execute mode returns ``extras["x"]``."""
    layout = layout if layout is not None else BlockCyclicLayout.square_ish(nranks)
    if layout.nranks != nranks:
        raise ValueError(f"layout {layout.pr}x{layout.pc} != nranks {nranks}")
    plan = CommPlan.build(matrix, layout)
    execute = cfg.mode == "execute"
    if execute:
        b = b if b is not None else np.ones(matrix.n)
        if len(b) != matrix.n:
            raise ValueError(f"b has length {len(b)}, expected {matrix.n}")
    if placement is None:
        placement = "spread" if machine.is_gpu_machine else "block"
    program = build_sptrsv_program(runtime, plan, b, execute, nranks)
    run = run_program(machine, program, placement=placement)
    job, result = run.job, run.result
    times = [r["time"] for r in result.results]
    extras: dict = {"plan": plan.describe(), "nnz": matrix.nnz}
    if execute:
        x = np.zeros(matrix.n)
        for r in range(nranks):
            for J, xJ in result.results[r]["x"].items():
                lo, hi = matrix.sn_range(J)
                x[lo:hi] = xJ
        extras["x"] = x
    merged = reduce(OpCounter.merge, result.per_rank, OpCounter())
    return WorkloadResult(
        workload="sptrsv",
        machine=machine.name,
        runtime=job.runtime_name,
        variant=job.runtime_name,
        nranks=nranks,
        time=max(times),
        counters=merged,
        per_rank=result.per_rank,
        extras=extras,
    )
