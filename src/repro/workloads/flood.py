"""Flood (bandwidth) microbenchmarks: the measured dots of Figs. 1, 3, 4.

A flood run sends ``msgs_per_sync`` messages of ``nbytes`` each from rank 0
to rank 1, then synchronises — repeated ``iters`` times.  The program is
written once against the transport :class:`BatchSpec` channel
(``post`` / ``commit`` / ``wait_batch``); the backend chosen by runtime
name supplies the op sequence (see docs/TRANSPORT.md):

* two-sided: ``Isend`` x n  /  pre-posted ``Irecv`` x n + ``Waitall``;
* one-sided MPI: ``Put`` x n + ``flush``, then the put/flush signal pair,
  receiver in the Listing-1 polling loop (4 MPI ops per *synchronised*
  message group, matching the paper's accounting);
* GPU SHMEM: ``put_signal_nbi`` x n, receiver ``wait_until_all``.

There is also an atomic-CAS flood for the Fig. 4 compare-and-swap series.

Bandwidth is measured at the *receiver* (time from batch start to the data
being usable), which is what the paper's sustained-bandwidth plots show.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._compat import renamed_kwargs
from repro.comm.job import Job
from repro.machines.base import MachineModel
from repro.roofline.fit import FloodSample
from repro.transport import AtomicDomainSpec, BatchSpec, SpaceSpec

__all__ = [
    "FloodResult",
    "run_flood",
    "sweep_flood",
    "run_cas_flood",
    "DEFAULT_SIZES",
    "DEFAULT_MSGS_PER_SYNC",
]

# 64 B .. 4 MiB in x8 steps: the span of the paper's bandwidth plots.
DEFAULT_SIZES: tuple[int, ...] = tuple(64 * 8**k for k in range(6))
# msg/sync axis; capped at 1024 in simulation (the analytic model extends
# the curves to the paper's 1e6 — see EXPERIMENTS.md).
DEFAULT_MSGS_PER_SYNC: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)


@dataclass(frozen=True)
class FloodResult:
    """Measured flood outcome for one (size, msg/sync) point."""

    machine: str
    runtime: str
    nbytes: int
    msgs_per_sync: int
    iters: int
    time_total: float
    bandwidth: float  # bytes/s sustained, receiver-observed
    latency_per_message: float  # seconds

    def as_sample(self) -> FloodSample:
        return FloodSample(
            nbytes=float(self.nbytes),
            msgs_per_sync=self.msgs_per_sync,
            bandwidth=self.bandwidth,
        )


def _program_flood(ctx, chan, n: int, iters: int):
    """Rank 0 floods rank 1; both measure the batch window."""
    ep = chan.endpoint(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for it in range(iters):
        if ctx.rank == 0:
            for _ in range(n):
                yield from ep.post(1)
            yield from ep.commit(1, it)
        elif ctx.rank == 1:
            yield from ep.wait_batch(0, it, n)
        yield from ctx.barrier()
    return ctx.sim.now - t0


@renamed_kwargs(size="nbytes", msg_bytes="nbytes", n_msgs="msgs_per_sync", count="msgs_per_sync")
def run_flood(
    machine: MachineModel,
    runtime: str,
    nbytes: int,
    msgs_per_sync: int,
    *,
    iters: int = 3,
    nranks: int = 2,
    placement: str = "spread",
) -> FloodResult:
    """Run one flood point and return the measured bandwidth.

    ``placement="spread"`` puts ranks 0/1 on adjacent endpoints (on-node
    paths); on a multi-node cluster, ``placement="block"`` puts them on
    different nodes, measuring the switched fabric instead.
    """
    if nbytes < 8:
        raise ValueError(f"flood nbytes must be >= 8, got {nbytes}")
    if msgs_per_sync < 1:
        raise ValueError(f"msgs_per_sync must be >= 1, got {msgs_per_sync}")
    job = Job(machine, nranks, runtime, placement=placement)
    chan = job.channel(BatchSpec(nbytes=nbytes))
    result = job.run(_program_flood, chan, msgs_per_sync, iters)
    # Receiver-observed window (rank 1's elapsed time over the batches).
    elapsed = result.results[1]
    total_bytes = float(nbytes) * msgs_per_sync * iters
    # Subtract the inter-iteration barrier cost so the number reflects the
    # communication itself, matching how flood benchmarks report.
    barrier_cost = job._barrier_delay * iters
    net = max(elapsed - barrier_cost, 1e-12)
    bw = total_bytes / net
    return FloodResult(
        machine=machine.name,
        runtime=job.runtime_name,
        nbytes=nbytes,
        msgs_per_sync=msgs_per_sync,
        iters=iters,
        time_total=elapsed,
        bandwidth=bw,
        latency_per_message=net / (msgs_per_sync * iters),
    )


def sweep_flood(
    machine_factory,
    runtime: str,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    msgs_per_sync: Sequence[int] = DEFAULT_MSGS_PER_SYNC,
    iters: int = 3,
) -> list[FloodResult]:
    """Full (size x msg/sync) sweep; a fresh machine per point keeps the
    fabric counters independent."""
    out = []
    for n in msgs_per_sync:
        for b in sizes:
            out.append(
                run_flood(machine_factory(), runtime, b, n, iters=iters)
            )
    return out


def _cas_flood(ctx, chan, n: int, target: int):
    """Back-to-back remote CAS stream, rank 0 -> ``target`` (Fig. 4 series)."""
    ep = chan.endpoint(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    if ctx.rank == 0:
        yield from ep.cas_stream("ctr", target, 0, [(i, i + 1) for i in range(n)])
        return ctx.sim.now - t0
    # Target rank is passive.
    return 0.0


def run_cas_flood(
    machine: MachineModel,
    runtime: str,
    *,
    n_ops: int = 64,
    target_rank: int = 1,
    nranks: int = 2,
) -> dict[str, float]:
    """Measure the sustained remote atomic CAS latency (seconds/op).

    ``target_rank`` selects the victim — on Summit GPUs, a rank in the other
    island exposes the cross-socket atomic penalty (1.6 us vs 1.0 us).
    """
    if not 0 < target_rank < nranks:
        raise ValueError(f"target_rank {target_rank} out of range (1..{nranks - 1})")
    job = Job(machine, nranks, runtime, placement="spread")
    chan = job.channel(
        AtomicDomainSpec(spaces={"ctr": SpaceSpec(8, dtype=np.int64, fill=0)})
    )
    result = job.run(_cas_flood, chan, n_ops, target_rank)
    elapsed = result.results[0]
    return {
        "machine": machine.name,
        "runtime": job.runtime_name,
        "ops": n_ops,
        "time": elapsed,
        "latency_per_cas": elapsed / n_ops,
        "cas_rate": n_ops / elapsed,
    }
