"""Flood (bandwidth) microbenchmarks: the measured dots of Figs. 1, 3, 4.

A flood run sends ``msgs_per_sync`` messages of ``nbytes`` each from rank 0
to rank 1, then synchronises — repeated ``iters`` times.  The pattern is
emitted as a :class:`repro.ir.IRProgram` over the transport
:class:`BatchSpec` channel (``post`` / ``commit`` / ``wait_batch``) and
lowered through :func:`repro.ir.run_program`; the backend chosen by
runtime name supplies the op sequence (see docs/TRANSPORT.md):

* two-sided: ``Isend`` x n  /  pre-posted ``Irecv`` x n + ``Waitall``;
* one-sided MPI: ``Put`` x n + ``flush``, then the put/flush signal pair,
  receiver in the Listing-1 polling loop (4 MPI ops per *synchronised*
  message group, matching the paper's accounting);
* GPU SHMEM: ``put_signal_nbi`` x n, receiver ``wait_until_all``.

Because the program is IR, the ambient pass pipeline (off by default —
see docs/IR.md) can rewrite it: coalesce merges the n small posts into
one ``n * nbytes`` post per sync, and auto-backend may retarget the
whole program.  With passes off the lowering is byte-identical to the
pre-IR hand-written generator.

There is also an atomic-CAS flood for the Fig. 4 compare-and-swap series.

Bandwidth is measured at the *receiver* (time from batch start to the data
being usable), which is what the paper's sustained-bandwidth plots show.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._compat import deprecated, renamed_kwargs
from repro.ir import ops as O
from repro.ir.lower import run_program
from repro.ir.program import IRProgram, region_for_all, static_program
from repro.machines.base import MachineModel
from repro.roofline.fit import FloodSample
from repro.transport import AtomicDomainSpec, BatchSpec, SpaceSpec

__all__ = [
    "FloodResult",
    "build_flood_program",
    "build_cas_flood_program",
    "run_flood",
    "sweep_flood",
    "run_cas_flood",
    "DEFAULT_SIZES",
    "DEFAULT_MSGS_PER_SYNC",
]

# 64 B .. 4 MiB in x8 steps: the span of the paper's bandwidth plots.
DEFAULT_SIZES: tuple[int, ...] = tuple(64 * 8**k for k in range(6))
# msg/sync axis; capped at 1024 in simulation (the analytic model extends
# the curves to the paper's 1e6 — see EXPERIMENTS.md).
DEFAULT_MSGS_PER_SYNC: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)


@dataclass(frozen=True)
class FloodResult:
    """Measured flood outcome for one (size, msg/sync) point."""

    machine: str
    runtime: str
    nbytes: int
    msgs_per_sync: int
    iters: int
    time_total: float
    bandwidth: float  # bytes/s sustained, receiver-observed
    latency_per_message: float  # seconds

    def as_sample(self) -> FloodSample:
        return FloodSample(
            nbytes=float(self.nbytes),
            msgs_per_sync=self.msgs_per_sync,
            bandwidth=self.bandwidth,
        )


def build_flood_program(
    runtime: str, nbytes: int, msgs_per_sync: int, *,
    iters: int = 3, nranks: int = 2,
) -> IRProgram:
    """Rank 0 floods rank 1; both measure the batch window."""
    n = msgs_per_sync

    def per_rank(rank: int, it: int):
        if rank == 0:
            return [O.BatchPost(1) for _ in range(n)] + [
                O.BatchCommit(1, it), O.Barrier(),
            ]
        if rank == 1:
            return [O.BatchWait(0, it, n), O.Barrier()]
        return [O.Barrier()]

    regions = [
        region_for_all(f"iter{it}", nranks, lambda r, it=it: per_rank(r, it))
        for it in range(iters)
    ]
    return static_program(
        "flood",
        BatchSpec(nbytes=nbytes),
        nranks,
        runtime,
        prologue=[O.Barrier()],
        regions=regions,
        portable=True,
        meta={"nbytes": nbytes, "msgs_per_sync": n, "iters": iters},
    )


@renamed_kwargs(size="nbytes", msg_bytes="nbytes", n_msgs="msgs_per_sync", count="msgs_per_sync")
def run_flood(
    machine: MachineModel,
    runtime: str,
    nbytes: int,
    msgs_per_sync: int,
    *,
    iters: int = 3,
    nranks: int = 2,
    placement: str = "spread",
) -> FloodResult:
    """Run one flood point and return the measured bandwidth.

    ``placement="spread"`` puts ranks 0/1 on adjacent endpoints (on-node
    paths); on a multi-node cluster, ``placement="block"`` puts them on
    different nodes, measuring the switched fabric instead.
    """
    if nbytes < 8:
        raise ValueError(f"flood nbytes must be >= 8, got {nbytes}")
    if msgs_per_sync < 1:
        raise ValueError(f"msgs_per_sync must be >= 1, got {msgs_per_sync}")
    program = build_flood_program(
        runtime, nbytes, msgs_per_sync, iters=iters, nranks=nranks
    )
    run = run_program(machine, program, placement=placement)
    job = run.job
    # Receiver-observed window (rank 1's elapsed time over the batches).
    elapsed = run.result.results[1]
    total_bytes = float(nbytes) * msgs_per_sync * iters
    # Subtract the inter-iteration barrier cost so the number reflects the
    # communication itself, matching how flood benchmarks report.
    barrier_cost = job._barrier_delay * iters
    net = max(elapsed - barrier_cost, 1e-12)
    bw = total_bytes / net
    return FloodResult(
        machine=machine.name,
        runtime=job.runtime_name,
        nbytes=nbytes,
        msgs_per_sync=msgs_per_sync,
        iters=iters,
        time_total=elapsed,
        bandwidth=bw,
        latency_per_message=net / (msgs_per_sync * iters),
    )


@deprecated("repro.sweep.run_sweep over run_flood points (docs/SWEEPS.md)")
def sweep_flood(
    machine_factory,
    runtime: str,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    msgs_per_sync: Sequence[int] = DEFAULT_MSGS_PER_SYNC,
    iters: int = 3,
) -> list[FloodResult]:
    """Full (size x msg/sync) sweep; a fresh machine per point keeps the
    fabric counters independent.

    **Deprecated** (one cycle): this serial hand-rolled grid predates the
    sweep layer and duplicates it without caching, parallelism, or the
    ambient :func:`repro.sweep.execution` config.  Build a
    :class:`repro.sweep.SweepSpec` whose runner calls :func:`run_flood`
    instead — the experiments (fig03/fig04) show the pattern.
    """
    out = []
    for n in msgs_per_sync:
        for b in sizes:
            out.append(
                run_flood(machine_factory(), runtime, b, n, iters=iters)
            )
    return out


def build_cas_flood_program(
    runtime: str, *, n_ops: int, target_rank: int, nranks: int = 2,
) -> IRProgram:
    """Back-to-back remote CAS stream, rank 0 -> target (Fig. 4 series)."""
    ops = tuple((i, i + 1) for i in range(n_ops))

    def per_rank(rank: int):
        if rank == 0:
            return [O.AtomicStream(
                "ctr", target_rank, 0, n=n_ops, ops=ops
            )]
        return []  # target rank is passive

    def finalize(ctx, state, elapsed):
        return elapsed if ctx.rank == 0 else 0.0

    return static_program(
        "cas_flood",
        AtomicDomainSpec(spaces={"ctr": SpaceSpec(8, dtype=np.int64, fill=0)}),
        nranks,
        runtime,
        prologue=[O.Barrier()],
        regions=[region_for_all("stream", nranks, per_rank)],
        finalize=finalize,
        meta={"n_ops": n_ops, "target_rank": target_rank},
    )


def run_cas_flood(
    machine: MachineModel,
    runtime: str,
    *,
    n_ops: int = 64,
    target_rank: int = 1,
    nranks: int = 2,
) -> dict[str, float]:
    """Measure the sustained remote atomic CAS latency (seconds/op).

    ``target_rank`` selects the victim — on Summit GPUs, a rank in the other
    island exposes the cross-socket atomic penalty (1.6 us vs 1.0 us).
    """
    if not 0 < target_rank < nranks:
        raise ValueError(f"target_rank {target_rank} out of range (1..{nranks - 1})")
    program = build_cas_flood_program(
        runtime, n_ops=n_ops, target_rank=target_rank, nranks=nranks
    )
    run = run_program(machine, program, placement="spread")
    elapsed = run.result.results[0]
    return {
        "machine": machine.name,
        "runtime": run.job.runtime_name,
        "ops": n_ops,
        "time": elapsed,
        "latency_per_cas": elapsed / n_ops,
        "cas_rate": n_ops / elapsed,
    }
