"""Flood (bandwidth) microbenchmarks: the measured dots of Figs. 1, 3, 4.

A flood run sends ``msgs_per_sync`` messages of ``nbytes`` each from rank 0
to rank 1, then synchronises — repeated ``iters`` times.  Three variants
match the paper's three communication flavours:

* two-sided: ``Isend`` x n  /  pre-posted ``Irecv`` x n + ``Waitall``;
* one-sided MPI: ``Put`` x n + ``flush``, then the put/flush signal pair,
  receiver in the Listing-1 polling loop (4 MPI ops per *synchronised*
  message group, matching the paper's accounting);
* GPU SHMEM: ``put_signal_nbi`` x n, receiver ``wait_until_all``.

There is also an atomic-CAS flood for the Fig. 4 compare-and-swap series.

Bandwidth is measured at the *receiver* (time from batch start to the data
being usable), which is what the paper's sustained-bandwidth plots show.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.comm.job import Job
from repro.machines.base import MachineModel
from repro.roofline.fit import FloodSample

__all__ = [
    "FloodResult",
    "run_flood",
    "sweep_flood",
    "run_cas_flood",
    "DEFAULT_SIZES",
    "DEFAULT_MSGS_PER_SYNC",
]

# 64 B .. 4 MiB in x8 steps: the span of the paper's bandwidth plots.
DEFAULT_SIZES: tuple[int, ...] = tuple(64 * 8**k for k in range(6))
# msg/sync axis; capped at 1024 in simulation (the analytic model extends
# the curves to the paper's 1e6 — see EXPERIMENTS.md).
DEFAULT_MSGS_PER_SYNC: tuple[int, ...] = (1, 4, 16, 64, 256, 1024)


@dataclass(frozen=True)
class FloodResult:
    """Measured flood outcome for one (size, msg/sync) point."""

    machine: str
    runtime: str
    nbytes: int
    msgs_per_sync: int
    iters: int
    time_total: float
    bandwidth: float  # bytes/s sustained, receiver-observed
    latency_per_message: float  # seconds

    def as_sample(self) -> FloodSample:
        return FloodSample(
            nbytes=float(self.nbytes),
            msgs_per_sync=self.msgs_per_sync,
            bandwidth=self.bandwidth,
        )


def _flood_two_sided(ctx, nbytes: int, n: int, iters: int):
    """Rank 0 floods rank 1; both measure the batch window."""
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for _ in range(iters):
        if ctx.rank == 0:
            reqs = []
            for _ in range(n):
                r = yield from ctx.isend(1, nbytes=nbytes, tag=7)
                reqs.append(r)
            yield from ctx.waitall(reqs)
        elif ctx.rank == 1:
            reqs = []
            for _ in range(n):
                r = yield from ctx.irecv(source=0, tag=7)
                reqs.append(r)
            yield from ctx.waitall(reqs)
        yield from ctx.barrier()
    return ctx.sim.now - t0


def _flood_one_sided(ctx, data_win, sig_win, nbytes: int, n: int, iters: int):
    """One-sided MPI flood with the paper's 4-op completion sequence."""
    nelems = max(int(nbytes // data_win.dtype.itemsize), 1)
    h = data_win.handle(ctx)
    s = sig_win.handle(ctx)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for it in range(iters):
        if ctx.rank == 0:
            for _ in range(n):
                yield from h.put(1, nelems=nelems)
            yield from h.flush(1)
            yield from s.put(
                1, np.array([it + 1], dtype=np.int64), offset=0
            )
            yield from s.flush(1)
        elif ctx.rank == 1:
            yield from ctx.poll_wait_signals(sig_win, [0], 1, value=it + 1)
        yield from ctx.barrier()
    return ctx.sim.now - t0


def _flood_shmem(ctx, data_win, sig_win, nbytes: int, n: int, iters: int):
    """GPU-initiated put-with-signal flood."""
    nelems = max(int(nbytes // data_win.dtype.itemsize), 1)
    yield from ctx.barrier()
    t0 = ctx.sim.now
    for it in range(iters):
        if ctx.rank == 0:
            for _ in range(n):
                yield from ctx.put_signal_nbi(
                    data_win,
                    1,
                    nelems=nelems,
                    signal_win=sig_win,
                    signal_idx=0,
                    signal_value=1,
                    signal_op="add",
                )
            yield from ctx.quiet()
        elif ctx.rank == 1:
            yield from ctx.wait_until_all(sig_win, [0], value=(it + 1) * n)
        yield from ctx.barrier()
    return ctx.sim.now - t0


def run_flood(
    machine: MachineModel,
    runtime: str,
    nbytes: int,
    msgs_per_sync: int,
    *,
    iters: int = 3,
    nranks: int = 2,
    placement: str = "spread",
) -> FloodResult:
    """Run one flood point and return the measured bandwidth.

    ``placement="spread"`` puts ranks 0/1 on adjacent endpoints (on-node
    paths); on a multi-node cluster, ``placement="block"`` puts them on
    different nodes, measuring the switched fabric instead.
    """
    if nbytes < 8:
        raise ValueError(f"flood nbytes must be >= 8, got {nbytes}")
    if msgs_per_sync < 1:
        raise ValueError(f"msgs_per_sync must be >= 1, got {msgs_per_sync}")
    job = Job(machine, nranks, runtime, placement=placement)
    if runtime == "two_sided":
        result = job.run(_flood_two_sided, nbytes, msgs_per_sync, iters)
    elif runtime == "one_sided":
        nelems = max(int(nbytes // 8), 1)
        data_win = job.window(nelems)
        sig_win = job.window(4, dtype=np.int64)
        result = job.run(
            _flood_one_sided, data_win, sig_win, nbytes, msgs_per_sync, iters
        )
    elif runtime == "shmem":
        nelems = max(int(nbytes // 8), 1)
        data_win = job.window(nelems)
        sig_win = job.window(4, dtype=np.uint64)
        result = job.run(
            _flood_shmem, data_win, sig_win, nbytes, msgs_per_sync, iters
        )
    else:
        raise ValueError(f"unknown flood runtime {runtime!r}")
    # Receiver-observed window (rank 1's elapsed time over the batches).
    elapsed = result.results[1]
    total_bytes = float(nbytes) * msgs_per_sync * iters
    # Subtract the inter-iteration barrier cost so the number reflects the
    # communication itself, matching how flood benchmarks report.
    barrier_cost = job._barrier_delay * iters
    net = max(elapsed - barrier_cost, 1e-12)
    bw = total_bytes / net
    return FloodResult(
        machine=machine.name,
        runtime=runtime,
        nbytes=nbytes,
        msgs_per_sync=msgs_per_sync,
        iters=iters,
        time_total=elapsed,
        bandwidth=bw,
        latency_per_message=net / (msgs_per_sync * iters),
    )


def sweep_flood(
    machine_factory,
    runtime: str,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    msgs_per_sync: Sequence[int] = DEFAULT_MSGS_PER_SYNC,
    iters: int = 3,
) -> list[FloodResult]:
    """Full (size x msg/sync) sweep; a fresh machine per point keeps the
    fabric counters independent."""
    out = []
    for n in msgs_per_sync:
        for b in sizes:
            out.append(
                run_flood(machine_factory(), runtime, b, n, iters=iters)
            )
    return out


def _cas_flood(ctx, win, n: int, target: int):
    """Back-to-back remote CAS stream, rank 0 -> ``target`` (Fig. 4 series)."""
    yield from ctx.barrier()
    t0 = ctx.sim.now
    if ctx.rank == 0:
        for i in range(n):
            if hasattr(ctx, "atomic_compare_swap"):
                yield from ctx.atomic_compare_swap(win, target, 0, i, i + 1)
            else:
                h = win.handle(ctx)
                yield from h.cas_blocking(target, 0, i, i + 1)
        return ctx.sim.now - t0
    # Target rank is passive.
    return 0.0


def run_cas_flood(
    machine: MachineModel,
    runtime: str,
    *,
    n_ops: int = 64,
    target_rank: int = 1,
    nranks: int = 2,
) -> dict[str, float]:
    """Measure the sustained remote atomic CAS latency (seconds/op).

    ``target_rank`` selects the victim — on Summit GPUs, a rank in the other
    island exposes the cross-socket atomic penalty (1.6 us vs 1.0 us).
    """
    if not 0 < target_rank < nranks:
        raise ValueError(f"target_rank {target_rank} out of range (1..{nranks - 1})")
    job = Job(machine, nranks, runtime, placement="spread")
    win = job.window(8, dtype=np.int64)
    result = job.run(_cas_flood, win, n_ops, target_rank)
    elapsed = result.results[0]
    return {
        "machine": machine.name,
        "runtime": runtime,
        "ops": n_ops,
        "time": elapsed,
        "latency_per_cas": elapsed / n_ops,
        "cas_rate": n_ops / elapsed,
    }
