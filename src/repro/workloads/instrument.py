"""Workload characterisation: regenerating the paper's Table II from runs.

Table II tabulates, per workload: the communication pattern, whether the
receiver is notified, the operations used, the peer-pair determinism, the
number of messages per synchronization, and the words per message.  The
static columns are properties of the implementations; the numeric columns
are *measured* here from instrumented runs of the actual workload code.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.machines.base import MachineModel
from repro.obs.session import current as _obs_current
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.workloads.stencil import ProcessGrid, StencilConfig, run_stencil
from repro.transport import TWO_SIDED, ONE_SIDED

__all__ = ["Table2Row", "characterize_workloads"]


def _span(name: str):
    """Phase span in the ambient observation session, if one is active."""
    session = _obs_current()
    return session.span(name) if session is not None else nullcontext()


@dataclass(frozen=True)
class Table2Row:
    """One row of the regenerated Table II."""

    workload: str
    pattern: str
    notify_receiver: str
    operation_two_sided: str
    operation_one_sided: str
    p2p_pair: str
    msgs_per_sync: str
    words_per_msg: str

    def cells(self) -> list[str]:
        return [
            self.workload,
            self.pattern,
            self.notify_receiver,
            self.operation_two_sided,
            self.operation_one_sided,
            self.p2p_pair,
            self.msgs_per_sync,
            self.words_per_msg,
        ]


def _stencil_measurements(machine: MachineModel, nranks: int = 16) -> tuple[float, float]:
    """Measured (msg/sync, words/msg) for an interior stencil rank."""
    cfg = StencilConfig(nx=1024, ny=1024, iters=4, mode="simulate")
    grid = ProcessGrid.square_ish(nranks)
    res = run_stencil(machine, TWO_SIDED, cfg, nranks, grid=grid)
    # Interior ranks have the full four neighbors; pick one.
    interior = None
    for r in range(nranks):
        if len(grid.neighbors(r)) == 4:
            interior = r
            break
    if interior is None:
        interior = 0
    c = res.per_rank[interior]
    # Per iteration: 4 messages, 1 waitall; the setup barrier is excluded
    # by measuring marginal counts over iterations.
    msgs_per_sync = c.messages / max(c.syncs - 1, 1)  # -1: setup barrier
    return msgs_per_sync, c.words_per_message()


def _sptrsv_measurements(machine: MachineModel, nranks: int = 4) -> tuple[float, float]:
    matrix = generate_matrix(MatrixSpec(n_supernodes=48, seed=7))
    res = run_sptrsv(machine, TWO_SIDED, matrix, nranks)
    c = res.counters
    words = c.words_per_message()
    # SpTRSV synchronises per message (a Recv per expected message).
    msgs_per_sync = 1.0
    return msgs_per_sync, words


def _hashtable_measurements(
    machine: MachineModel, nranks: int = 4
) -> tuple[float, float]:
    cfg = HashTableConfig(total_inserts=2000, seed=11)
    res = run_hashtable(machine, ONE_SIDED, cfg, nranks)
    c = res.counters
    # One-sided: atomics all the way; syncs happen only at the start/end
    # barriers, so msg/sync is the full insert stream.
    msgs_per_sync = c.atomics / 2.0  # two barriers
    return msgs_per_sync, 1.0


def characterize_workloads(machine: MachineModel) -> list[Table2Row]:
    """Regenerate Table II on the given machine (numeric cells measured)."""
    with _span("characterize:stencil"):
        st_ms, st_words = _stencil_measurements(machine)
    with _span("characterize:sptrsv"):
        sp_ms, sp_words = _sptrsv_measurements(machine)
    with _span("characterize:hashtable"):
        hb_ms, _ = _hashtable_measurements(machine)
    return [
        Table2Row(
            workload="Stencil",
            pattern="BSP sync",
            notify_receiver="Yes",
            operation_two_sided="non-blocking send/recv with waitall",
            operation_one_sided="non-blocking put with fence",
            p2p_pair="deterministic & fixed",
            msgs_per_sync=f"{st_ms:.0f}",
            words_per_msg=f"problem size / P (measured {st_words:.0f})",
        ),
        Table2Row(
            workload="SpTRSV",
            pattern="DAG async",
            notify_receiver="Yes",
            operation_two_sided="non-blocking send, recv loop",
            operation_one_sided="put+flush (data, signal); user notification",
            p2p_pair="deterministic & variable",
            msgs_per_sync=f"{sp_ms:.0f}",
            words_per_msg=f"avg {sp_words:.0f}",
        ),
        Table2Row(
            workload="Hashtable",
            pattern="Random async",
            notify_receiver="No",
            operation_two_sided="non-blocking send, blocking recv",
            operation_one_sided="atomic compare and swap",
            p2p_pair="indeterministic",
            msgs_per_sync=f"{hb_ms:.0f} (all inserts)",
            words_per_msg="1 (two-sided: 3)",
        ),
    ]
