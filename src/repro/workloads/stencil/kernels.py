"""The stencil compute kernel and its serial reference.

The kernel is the classic 5-point Jacobi relaxation with fixed (Dirichlet)
boundaries — the computation behind the paper's stencil benchmark (from the
SC16 MPI tutorial code it cites).  Vectorised numpy throughout, per the
hpc-parallel guides: no Python-level cell loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "jacobi_step",
    "jacobi_reference",
    "initial_grid",
    "stencil_flops",
    "stencil_bytes",
]


def initial_grid(nx: int, ny: int, *, hot_edge: float = 1.0) -> np.ndarray:
    """Global initial condition: zero interior, one hot (north) edge.

    Deterministic, so distributed runs can be verified bit-for-bit against
    the serial reference.
    """
    if nx < 3 or ny < 3:
        raise ValueError(f"grid must be at least 3x3, got {nx}x{ny}")
    u = np.zeros((ny, nx), dtype=np.float64)
    u[0, :] = hot_edge
    return u


def jacobi_step(u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """One Jacobi sweep over the interior of ``u`` (halo/boundary in place).

    ``u`` includes its boundary (or halo) ring; only ``u[1:-1, 1:-1]`` is
    updated.  Pass ``out`` to avoid an allocation per step.
    """
    if u.ndim != 2 or u.shape[0] < 3 or u.shape[1] < 3:
        raise ValueError(f"jacobi_step needs a 2D array >= 3x3, got {u.shape}")
    if out is None:
        out = u.copy()
    else:
        out[:] = u
    out[1:-1, 1:-1] = 0.25 * (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
    )
    return out


def jacobi_reference(u0: np.ndarray, iters: int) -> np.ndarray:
    """Serial reference: ``iters`` Jacobi sweeps with fixed boundaries."""
    if iters < 0:
        raise ValueError(f"iters must be >= 0, got {iters}")
    u = u0.copy()
    scratch = u.copy()
    for _ in range(iters):
        scratch = jacobi_step(u, scratch)
        u, scratch = scratch, u
    return u


def heat_step(
    u: np.ndarray,
    out: np.ndarray | None = None,
    *,
    sources: list[tuple[int, int]] | None = None,
    energy: float = 0.0,
) -> np.ndarray:
    """One explicit heat-equation step with energy injection.

    This is the paper's actual tutorial stencil (the SC16 MPI course code
    its artifact cites): ``u' = u/2 + (N+S+E+W)/8`` on the interior, then
    ``energy`` added at each source cell.  Unlike the Laplace/Jacobi
    variant, total heat is conserved up to the injected energy and the
    (zero) boundary outflux — the invariant the tests check.

    ``sources`` are (row, col) positions in the same (halo-inclusive)
    coordinates as ``u``.
    """
    if u.ndim != 2 or u.shape[0] < 3 or u.shape[1] < 3:
        raise ValueError(f"heat_step needs a 2D array >= 3x3, got {u.shape}")
    if out is None:
        out = u.copy()
    else:
        out[:] = u
    out[1:-1, 1:-1] = u[1:-1, 1:-1] / 2.0 + (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
    ) / 8.0
    if sources:
        for r, c in sources:
            if not (1 <= r < u.shape[0] - 1 and 1 <= c < u.shape[1] - 1):
                raise ValueError(f"source ({r}, {c}) outside the interior")
            out[r, c] += energy
    return out


def heat_reference(
    nx: int,
    ny: int,
    iters: int,
    *,
    sources: list[tuple[int, int]],
    energy: float = 1.0,
) -> np.ndarray:
    """Serial reference for the heat/energy stencil on a zero field with
    zero (cold) boundaries."""
    if iters < 0:
        raise ValueError(f"iters must be >= 0, got {iters}")
    u = np.zeros((ny, nx), dtype=np.float64)
    scratch = u.copy()
    for _ in range(iters):
        scratch = heat_step(u, scratch, sources=sources, energy=energy)
        u, scratch = scratch, u
    return u


def total_heat(u: np.ndarray) -> float:
    """Total energy in the field (interior; boundaries are sinks)."""
    return float(u[1:-1, 1:-1].sum())


def stencil_flops(cells: int) -> float:
    """FLOPs per sweep: 3 adds + 1 multiply per interior cell."""
    return 4.0 * cells


def stencil_bytes(cells: int, itemsize: int = 8) -> float:
    """Memory traffic per sweep: read u + write out (streaming, the 4
    neighbor loads hit cache)."""
    return 2.0 * cells * itemsize
