"""Distributed 2D stencil (paper §III-A).

Per iteration every rank exchanges four halo strips with its grid neighbors
and then relaxes its local block.  The exchange is written once against the
transport :class:`HaloSpec` channel (``begin`` / ``put`` / ``finish``); the
runtime backend supplies the op sequence — two-sided Isend/Irecv/Waitall,
one-sided puts within a fence pair, or fused GPU put-with-signal (see
docs/TRANSPORT.md).  All backends share the same decomposition and the same
communication structure (message concurrency = number of neighbors, message
size = halo size), exactly the design-portability point the paper makes.

``mode="execute"`` does the real numpy Jacobi math on the payloads and the
result is verifiable against the serial reference; ``mode="simulate"`` moves
only byte counts (for paper-scale grids).  Both charge the same modelled
compute time, so timings are comparable across modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

import numpy as np

from repro.comm.base import OpCounter
from repro.ir import ops as O
from repro.ir.lower import run_program
from repro.ir.program import IRProgram, Region, static_program
from repro.machines.base import MachineModel
from repro.transport import HaloSpec
from repro.workloads.base import WorkloadResult
from repro.workloads.stencil.decomposition import ProcessGrid
from repro.workloads.stencil.kernels import (
    heat_step,
    initial_grid,
    jacobi_step,
    stencil_bytes,
    stencil_flops,
)

__all__ = ["StencilConfig", "build_stencil_program", "run_stencil"]

_DIR_ORDER = ("north", "south", "west", "east")
_DIR_INDEX = {d: i for i, d in enumerate(_DIR_ORDER)}


@dataclass(frozen=True)
class StencilConfig:
    """Stencil problem description.

    The paper's test case is ``nx = ny = 16384``, 1000 iterations, process
    grids 2x2 .. 16x8 (message sizes 2^16 down to 2^13 bytes).
    """

    nx: int = 16384
    ny: int = 16384
    iters: int = 10
    mode: str = "simulate"  # "simulate" | "execute"
    # "jacobi": Laplace relaxation with a hot edge (default, simplest to
    # verify).  "heat": the paper's tutorial stencil — explicit heat
    # diffusion with ``nsources`` point sources injecting ``energy`` per
    # iteration into a cold field (its CLI: grid, energy, iters, px, py).
    variant: str = "jacobi"
    energy: float = 1.0
    nsources: int = 3

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ValueError(f"grid must be >= 3x3, got {self.nx}x{self.ny}")
        if self.iters < 1:
            raise ValueError(f"iters must be >= 1, got {self.iters}")
        if self.mode not in ("simulate", "execute"):
            raise ValueError(f"mode must be simulate|execute, got {self.mode!r}")
        if self.variant not in ("jacobi", "heat"):
            raise ValueError(f"variant must be jacobi|heat, got {self.variant!r}")
        if self.nsources < 0:
            raise ValueError("nsources must be >= 0")

    def source_positions(self) -> list[tuple[int, int]]:
        """Deterministic global (row, col) source positions, interior-only."""
        out = []
        for i in range(self.nsources):
            r = min(max(self.ny * (i + 1) // (self.nsources + 1), 1), self.ny - 2)
            c = min(max(self.nx * (i + 1) // (self.nsources + 1), 1), self.nx - 2)
            out.append((r, c))
        return out


@dataclass
class _RankPlan:
    """Precomputed per-rank geometry shared by all three variants."""

    grid: ProcessGrid
    rank: int
    bx: int
    by: int
    neighbors: dict[str, int]
    halo_elems: dict[str, int] = field(default_factory=dict)
    # Window layout: direction -> (offset, length) in the halo window.
    win_segment: dict[str, tuple[int, int]] = field(default_factory=dict)

    @classmethod
    def build(cls, grid: ProcessGrid, rank: int, nx: int, ny: int) -> "_RankPlan":
        bx, by = grid.block_shape(rank, nx, ny)
        plan = cls(
            grid=grid, rank=rank, bx=bx, by=by, neighbors=grid.neighbors(rank)
        )
        plan.halo_elems = {"north": bx, "south": bx, "west": by, "east": by}
        offset = 0
        for d in _DIR_ORDER:
            plan.win_segment[d] = (offset, plan.halo_elems[d])
            offset += plan.halo_elems[d]
        return plan

    @property
    def window_count(self) -> int:
        return 2 * self.bx + 2 * self.by

    def edge_strip(self, local: np.ndarray, direction: str) -> np.ndarray:
        """The owned edge row/column to send toward ``direction``."""
        if direction == "north":
            return local[1, 1:-1]
        if direction == "south":
            return local[-2, 1:-1]
        if direction == "west":
            return local[1:-1, 1]
        if direction == "east":
            return local[1:-1, -2]
        raise ValueError(f"unknown direction {direction!r}")

    def write_halo(self, local: np.ndarray, direction: str, data: np.ndarray) -> None:
        """Store data received *from* ``direction`` into the halo ring."""
        if direction == "north":
            local[0, 1:-1] = data
        elif direction == "south":
            local[-1, 1:-1] = data
        elif direction == "west":
            local[1:-1, 0] = data
        elif direction == "east":
            local[1:-1, -1] = data
        else:
            raise ValueError(f"unknown direction {direction!r}")


def _local_sources(plan: _RankPlan, cfg: StencilConfig) -> list[tuple[int, int]]:
    """This rank's heat sources in local (halo-inclusive) coordinates."""
    rows, cols = plan.grid.block(plan.rank, cfg.nx, cfg.ny)
    out = []
    for r, c in cfg.source_positions():
        if rows.start <= r < rows.stop and cols.start <= c < cols.stop:
            out.append((r - rows.start + 1, c - cols.start + 1))
    return out


def _local_setup(plan: _RankPlan, cfg: StencilConfig) -> np.ndarray | None:
    """Initial local block (with halo ring) in execute mode."""
    if cfg.mode != "execute":
        return None
    rows, cols = plan.grid.block(plan.rank, cfg.nx, cfg.ny)
    if cfg.variant == "heat":
        u0 = np.zeros((cfg.ny, cfg.nx), dtype=np.float64)
    else:
        u0 = initial_grid(cfg.nx, cfg.ny)
    local = np.zeros((plan.by + 2, plan.bx + 2), dtype=np.float64)
    local[1:-1, 1:-1] = u0[rows, cols]
    # Global-boundary halo cells hold the fixed Dirichlet values.
    ix, iy = plan.grid.coords(plan.rank)
    if iy == 0:
        local[0, 1:-1] = u0[0, cols]
    if iy == plan.grid.py - 1:
        local[-1, 1:-1] = u0[-1, cols]
    if ix == 0:
        local[1:-1, 0] = u0[rows, 0]
    if ix == plan.grid.px - 1:
        local[1:-1, -1] = u0[rows, -1]
    return local


def _pin_global_boundary(plan: _RankPlan, local: np.ndarray, pinned: dict) -> None:
    """Re-apply Dirichlet values on owned global-boundary cells."""
    for key, values in pinned.items():
        if key == "top":
            local[1, :] = values
        elif key == "bottom":
            local[-2, :] = values
        elif key == "left":
            local[:, 1] = values
        elif key == "right":
            local[:, -2] = values


def _pinned_slices(plan: _RankPlan, local: np.ndarray | None) -> dict:
    if local is None:
        return {}
    ix, iy = plan.grid.coords(plan.rank)
    pinned = {}
    if iy == 0:
        pinned["top"] = local[1, :].copy()
    if iy == plan.grid.py - 1:
        pinned["bottom"] = local[-2, :].copy()
    if ix == 0:
        pinned["left"] = local[:, 1].copy()
    if ix == plan.grid.px - 1:
        pinned["right"] = local[:, -2].copy()
    return pinned


def _sweep_fn(cfg: StencilConfig):
    """The real numpy sweep (execute mode), run where the hand-written
    runner ran it: after the halos land, before the modelled compute."""

    def fn(state: dict) -> None:
        plan, local, scratch = state["plan"], state["local"], state["scratch"]
        if local is None:
            return
        if cfg.variant == "heat":
            scratch = heat_step(
                local, scratch, sources=state["sources"], energy=cfg.energy
            )
        else:
            scratch = jacobi_step(local, scratch)
        local, scratch = scratch, local
        _pin_global_boundary(plan, local, state["pinned"])
        state["local"], state["scratch"] = local, scratch

    return fn


def _write_halos(state: dict, received: dict) -> None:
    plan, local = state["plan"], state["local"]
    for d in plan.neighbors:
        plan.write_halo(local, d, received[d])


def _halo_spec(grid: ProcessGrid, cfg: StencilConfig, nranks: int) -> HaloSpec:
    """Global halo geometry: the transport backends need the *receiver's*
    window layout (blocks can be uneven, so neighbor layouts differ)."""
    plans = {r: _RankPlan.build(grid, r, cfg.nx, cfg.ny) for r in range(nranks)}
    bx = -(-cfg.nx // grid.px)  # ceil: largest block dims size the windows
    by = -(-cfg.ny // grid.py)
    return HaloSpec(
        slot=dict(_DIR_INDEX),
        opposite={d: ProcessGrid.opposite(d) for d in _DIR_ORDER},
        neighbors={r: plans[r].neighbors for r in range(nranks)},
        segments={r: dict(plans[r].win_segment) for r in range(nranks)},
        counts={r: plans[r].window_count for r in range(nranks)},
        win_count=2 * bx + 2 * by,
        dtype=np.float64,
    )


def build_stencil_program(
    runtime: str, cfg: StencilConfig, grid: ProcessGrid, nranks: int
) -> IRProgram:
    """Per-iteration halo-exchange regions over the HaloSpec channel.

    Execute-mode payloads resolve lazily against the per-rank ``state``
    (edge strips must read the *current* block at put time), and the
    sweep's ``interior_frac`` hint tells the overlap pass how much of
    the modelled compute is independent of the incoming halos.
    """
    execute = cfg.mode == "execute"
    plans = {r: _RankPlan.build(grid, r, cfg.nx, cfg.ny) for r in range(nranks)}
    sweep = _sweep_fn(cfg) if execute else None

    def setup(ctx, chan, ep, state):
        plan = plans[ctx.rank]
        local = _local_setup(plan, cfg)
        state["plan"] = plan
        state["local"] = local
        state["scratch"] = local.copy() if local is not None else None
        state["pinned"] = _pinned_slices(plan, local)
        state["sources"] = _local_sources(plan, cfg)

    regions = []
    for it in range(cfg.iters):
        body = []
        for r in range(nranks):
            plan = plans[r]
            ops: list[O.Op] = [O.HaloBegin(it)]
            for d, nb in plan.neighbors.items():
                values = (
                    (lambda st, d=d: st["plan"].edge_strip(st["local"], d))
                    if execute
                    else None
                )
                ops.append(O.HaloPut(d, nb, values=values))
            ops.append(O.HaloFinish(it, on_done=_write_halos if execute else None))
            cells = plan.bx * plan.by
            ops.append(O.Compute(
                nbytes=stencil_bytes(cells),
                flops=stencil_flops(cells),
                fn=sweep,
                interior_frac=max(plan.bx - 2, 0) * max(plan.by - 2, 0) / cells,
            ))
            body.append(tuple(ops))
        regions.append(Region(f"iter{it}", tuple(body)))

    def finalize(ctx, state, elapsed):
        local = state["local"]
        return {
            "time": elapsed,
            "block": local[1:-1, 1:-1] if local is not None else None,
        }

    return static_program(
        "stencil",
        _halo_spec(grid, cfg, nranks),
        nranks,
        runtime,
        prologue=[O.Barrier()],
        regions=regions,
        setup=setup,
        finalize=finalize,
        portable=True,
        meta={"execute": execute, "iters": cfg.iters,
              "grid": f"{grid.px}x{grid.py}"},
    )


def run_stencil(
    machine: MachineModel,
    runtime: str,
    cfg: StencilConfig,
    nranks: int,
    *,
    grid: ProcessGrid | None = None,
    placement: str | None = None,
) -> WorkloadResult:
    """Run the stencil and return timing + instrumentation.

    ``runtime`` is a backend name from :mod:`repro.transport`.  In execute
    mode the assembled global field is returned in ``extras["field"]`` for
    verification.
    """
    grid = grid if grid is not None else ProcessGrid.square_ish(nranks)
    if grid.nranks != nranks:
        raise ValueError(f"grid {grid.px}x{grid.py} != nranks {nranks}")
    if placement is None:
        placement = "spread" if machine.is_gpu_machine else "block"
    program = build_stencil_program(runtime, cfg, grid, nranks)
    run = run_program(machine, program, placement=placement)
    job, result = run.job, run.result
    times = [r["time"] for r in result.results]
    extras: dict = {
        "grid": f"{grid.px}x{grid.py}",
        "halo_bytes": grid.halo_bytes(cfg.nx, cfg.ny),
        "iters": cfg.iters,
    }
    if cfg.mode == "execute":
        field_out = np.zeros((cfg.ny, cfg.nx), dtype=np.float64)
        if cfg.variant != "heat":
            field_out[:] = initial_grid(cfg.nx, cfg.ny)  # fixed boundary ring
        for rank in range(nranks):
            rows, cols = grid.block(rank, cfg.nx, cfg.ny)
            field_out[rows, cols] = result.results[rank]["block"]
        extras["field"] = field_out
    merged = reduce(OpCounter.merge, result.per_rank, OpCounter())
    return WorkloadResult(
        workload="stencil",
        machine=machine.name,
        runtime=job.runtime_name,
        variant=job.runtime_name,
        nranks=nranks,
        time=max(times),
        counters=merged,
        per_rank=result.per_rank,
        extras=extras,
    )
