"""2D process-grid decomposition for the stencil workload.

The paper runs the stencil on a 2D process grid (``srun ... ./stencil 16384
1 1000 2 2`` — grid size, energy, iterations, and the x/y process
decomposition), scaling 4..128 ranks so the per-rank halo message shrinks
from 2^16 to 2^13 bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ProcessGrid", "DIRECTIONS"]

# Direction name -> (dx, dy) in process-grid coordinates.
DIRECTIONS: dict[str, tuple[int, int]] = {
    "west": (-1, 0),
    "east": (1, 0),
    "north": (0, -1),
    "south": (0, 1),
}

_OPPOSITE = {"west": "east", "east": "west", "north": "south", "south": "north"}


@dataclass(frozen=True)
class ProcessGrid:
    """A ``px`` x ``py`` grid of ranks, row-major (x fastest)."""

    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ValueError(f"process grid must be positive, got {self.px}x{self.py}")

    @classmethod
    def square_ish(cls, nranks: int) -> "ProcessGrid":
        """The most-square factorisation with ``px >= py`` (paper's shapes:
        4 -> 2x2, 8 -> 4x2, ..., 128 -> 16x8)."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        py = int(math.isqrt(nranks))
        while nranks % py:
            py -= 1
        return cls(px=nranks // py, py=py)

    @property
    def nranks(self) -> int:
        return self.px * self.py

    def coords(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range for {self.px}x{self.py} grid")
        return rank % self.px, rank // self.px

    def rank_of(self, ix: int, iy: int) -> int | None:
        """Rank at grid coords, or None outside the grid (non-periodic)."""
        if 0 <= ix < self.px and 0 <= iy < self.py:
            return iy * self.px + ix
        return None

    def neighbors(self, rank: int) -> dict[str, int]:
        """Existing neighbors only: boundary ranks have fewer than four."""
        ix, iy = self.coords(rank)
        out = {}
        for name, (dx, dy) in DIRECTIONS.items():
            nb = self.rank_of(ix + dx, iy + dy)
            if nb is not None:
                out[name] = nb
        return out

    @staticmethod
    def opposite(direction: str) -> str:
        return _OPPOSITE[direction]

    @staticmethod
    def _split(n: int, parts: int, idx: int) -> tuple[int, int]:
        """Start and length of chunk ``idx`` when ``n`` is split into
        ``parts`` near-equal chunks (the first ``n % parts`` chunks get one
        extra element — the paper's 3x2 decomposition of 16384 is uneven)."""
        base, rem = divmod(n, parts)
        start = idx * base + min(idx, rem)
        length = base + (1 if idx < rem else 0)
        return start, length

    def block(self, rank: int, nx: int, ny: int) -> tuple[slice, slice]:
        """This rank's owned index range of the global ``ny`` x ``nx`` grid
        (row = y, col = x), as ``(rows, cols)`` slices."""
        if nx < self.px or ny < self.py:
            raise ValueError(
                f"grid {nx}x{ny} smaller than process grid {self.px}x{self.py}"
            )
        ix, iy = self.coords(rank)
        y0, by = self._split(ny, self.py, iy)
        x0, bx = self._split(nx, self.px, ix)
        return slice(y0, y0 + by), slice(x0, x0 + bx)

    def block_shape(self, rank: int, nx: int, ny: int) -> tuple[int, int]:
        """(bx, by): this rank's owned columns and rows."""
        rows, cols = self.block(rank, nx, ny)
        return cols.stop - cols.start, rows.stop - rows.start

    def halo_bytes(self, nx: int, ny: int, itemsize: int = 8) -> dict[str, int]:
        """Per-direction halo message sizes in bytes (largest block)."""
        bx = -(-nx // self.px)  # ceil
        by = -(-ny // self.py)
        return {
            "west": by * itemsize,
            "east": by * itemsize,
            "north": bx * itemsize,
            "south": bx * itemsize,
        }
