"""Stencil workload (paper §III-A): BSP halo exchange, three comm variants."""

from repro.workloads.stencil.decomposition import DIRECTIONS, ProcessGrid
from repro.workloads.stencil.kernels import (
    heat_reference,
    heat_step,
    initial_grid,
    jacobi_reference,
    jacobi_step,
    stencil_bytes,
    stencil_flops,
    total_heat,
)
from repro.workloads.stencil.runner import StencilConfig, run_stencil

__all__ = [
    "DIRECTIONS",
    "ProcessGrid",
    "heat_reference",
    "heat_step",
    "initial_grid",
    "jacobi_reference",
    "jacobi_step",
    "stencil_bytes",
    "stencil_flops",
    "total_heat",
    "StencilConfig",
    "run_stencil",
]
