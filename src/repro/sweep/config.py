"""Ambient execution configuration for sweeps.

Experiment runners keep their zero-argument signatures (``run_fig03()``),
so parallelism and caching cannot be threaded through them; instead the
CLI (or a test) installs an :class:`ExecutionConfig` ambiently::

    from repro.sweep import ResultCache, execution

    with execution(jobs=4, cache=ResultCache(".repro-cache")):
        report = run_fig03()          # 4-way parallel, cached

Outside any ``execution()`` block the default is serial and uncached —
the zero-surprise library path (``pytest`` in a clean checkout touches no
cache directory and spawns no workers).

The config owns the process pool so consecutive sweeps in one block
(``repro run all --jobs N``) share workers instead of paying pool
start-up per experiment.  Workers are started with an initializer that
clears any forked-in ambient :class:`~repro.obs.session.Obs` session:
only plain (runner, params, seed) tuples cross the pickle boundary,
never live ``Tracer``/``Obs`` instances.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.sweep.cache import ResultCache

__all__ = ["ExecutionConfig", "current_execution", "execution"]


def _worker_init() -> None:
    """Process-pool worker start-up: drop inherited observability state.

    Under the fork start method a worker inherits the parent's ambient
    ``Obs`` session; metrics it fed there would be lost noise (the parent
    aggregates point *results*, not worker-side instruments), and tracer
    sinks (open JSONL files) must not be double-driven.  Point runners
    always start unobserved.
    """
    from repro.obs import session as _session

    _session._ACTIVE.clear()


@dataclass
class ExecutionConfig:
    """How sweeps execute: worker count, result cache, progress output."""

    jobs: int = 1
    cache: ResultCache | None = None
    progress: Callable[[str], None] | None = None
    _pool: ProcessPoolExecutor | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def pool(self) -> ProcessPoolExecutor:
        """The shared process pool (created lazily on first parallel sweep)."""
        if self.jobs < 2:
            raise ValueError("no pool for a serial ExecutionConfig (jobs=1)")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
        return self._pool

    def reset_pool(self) -> None:
        """Discard the pool (broken or not); ``pool()`` recreates it.

        The executor calls this after a :class:`BrokenProcessPool` so the
        next sweep in the same ``execution()`` block gets live workers.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_DEFAULT = ExecutionConfig()
_STACK: list[ExecutionConfig] = []


def current_execution() -> ExecutionConfig:
    """The innermost active config (serial/uncached default otherwise)."""
    return _STACK[-1] if _STACK else _DEFAULT


@contextmanager
def execution(
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[str], None] | None = None,
) -> Iterator[ExecutionConfig]:
    """Install an execution config for the duration of the block.

    The config's process pool (if any) is shut down on exit.
    """
    cfg = ExecutionConfig(jobs=jobs, cache=cache, progress=progress)
    _STACK.append(cfg)
    try:
        yield cfg
    finally:
        _STACK.pop()
        cfg.close()
