"""Declarative sweep specifications.

Every figure in the paper is a sweep over (machine x runtime x message
size x msg/sync); a :class:`SweepSpec` states that grid once and names a
pure *point runner* — a module-level function ``runner(params, seed) ->
dict`` — instead of hand-rolled nested loops.  The executor
(:mod:`repro.sweep.executor`) then decides *how* the grid runs: serially,
over a process pool, or straight out of the on-disk result cache.

Point runners must be:

* **module-level** (picklable by reference, so process-pool workers can
  import them);
* **pure** — everything the point needs arrives in ``params`` (plain
  JSON-able values; machines are referenced by registry *name* and built
  fresh inside the runner via
  :func:`repro.machines.registry.get_machine`);
* **JSON-valued** — the returned mapping is what gets cached on disk.

The per-point ``seed`` is derived from the point key (sha256), not from
worker order, so parallel runs are bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PointRunner", "SweepPoint", "SweepSpec", "canonical_json"]

# runner(params, seed) -> JSON-serialisable mapping
PointRunner = Callable[[Mapping[str, Any], int], Mapping[str, Any]]


def canonical_json(value: Any) -> str:
    """Stable JSON text for hashing: sorted keys, tuples as lists."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=_jsonify)


def _jsonify(value: Any):
    if isinstance(value, (tuple, set, frozenset)):
        return list(value)
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    raise TypeError(f"sweep params must be JSON-able, got {type(value).__name__}")


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a runner plus its frozen parameter assignment."""

    sweep: str
    runner: PointRunner
    params: tuple[tuple[str, Any], ...]

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def runner_id(self) -> str:
        return f"{self.runner.__module__}:{self.runner.__qualname__}"

    @property
    def key(self) -> str:
        """Canonical identity of the point (sweep + runner + params)."""
        return f"{self.sweep}|{self.runner_id}|{canonical_json(self.params_dict)}"

    @property
    def seed(self) -> int:
        """Deterministic RNG seed derived from the point key.

        A pure function of the point's identity — independent of worker
        scheduling — so parallel execution reproduces serial results
        exactly.
        """
        digest = hashlib.sha256(self.key.encode()).digest()
        return int.from_bytes(digest[:8], "little") >> 1  # non-negative

    def label(self) -> str:
        """Short human-readable form for progress/error messages."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.sweep}({inner})"


@dataclass
class SweepSpec:
    """A declarative sweep: a grid of parameter assignments plus a runner.

    Args:
        name: sweep label (usually the experiment name, e.g. ``"fig03"``).
        runner: the point-runner function (see module docstring).
        axes: ordered mapping of axis name to its values; the grid is the
            cross product, with the *last* axis varying fastest.
        points: explicit parameter dicts appended after the ``axes``
            product — for irregular grids (e.g. Fig. 4's CAS cases riding
            along with the flood grid).
        common: parameters merged into every point (e.g. ``iters``); an
            axis or explicit point may override a common key.
        machine_params: names of parameters whose values are machine
            registry names.  The result cache fingerprints these machines'
            LogGP/topology parameters so edits to a machine model
            invalidate its cached points.
        version: bump to invalidate every cached result of this sweep
            (e.g. after changing the runner's semantics without changing
            its signature).
    """

    name: str
    runner: PointRunner
    axes: Mapping[str, Sequence[Any]] | None = None
    points: Sequence[Mapping[str, Any]] | None = None
    common: Mapping[str, Any] = field(default_factory=dict)
    machine_params: tuple[str, ...] = ("machine",)
    version: int = 1

    def iter_points(self) -> list[SweepPoint]:
        """Expand the grid into concrete points, in deterministic order."""
        assignments: list[dict[str, Any]] = []
        if self.axes:
            names = list(self.axes)
            for combo in itertools.product(*(self.axes[n] for n in names)):
                assignments.append(dict(zip(names, combo)))
        if self.points:
            assignments.extend(dict(p) for p in self.points)
        if not assignments:
            return []
        out = []
        for a in assignments:
            merged = {**self.common, **a}
            out.append(
                SweepPoint(
                    sweep=self.name,
                    runner=self.runner,
                    params=tuple(merged.items()),
                )
            )
        return out

    def machine_names(self, point: SweepPoint) -> list[str]:
        """Registry names referenced by ``point`` (for cache fingerprints)."""
        params = point.params_dict
        return [
            params[k]
            for k in self.machine_params
            if isinstance(params.get(k), str)
        ]
