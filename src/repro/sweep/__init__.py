"""``repro.sweep`` — declarative sweep grids, parallel execution, caching.

The paper's figures are all sweeps over (machine x runtime x message size
x msg/sync); this package factors that shape out of the experiment
modules:

* :mod:`repro.sweep.spec` — :class:`SweepSpec`/:class:`SweepPoint`: a
  declarative grid plus a pure, picklable point-runner function;
* :mod:`repro.sweep.executor` — :func:`run_sweep` with serial and
  process-pool backends; grid-order results and key-derived per-point
  seeds make parallel output bit-identical to serial;
* :mod:`repro.sweep.cache` — :class:`ResultCache`, a content-addressed
  on-disk store keyed on point spec + machine fingerprints + repro
  version;
* :mod:`repro.sweep.config` — the ambient :func:`execution` context the
  CLI's ``--jobs N`` / ``--no-cache`` flags install.

See ``docs/SWEEPS.md`` for the full tour.
"""

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.config import ExecutionConfig, current_execution, execution
from repro.sweep.executor import SweepError, SweepResult, SweepStats, run_sweep
from repro.sweep.spec import PointRunner, SweepPoint, SweepSpec

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecutionConfig",
    "PointRunner",
    "ResultCache",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "current_execution",
    "execution",
    "run_sweep",
]
