"""Content-addressed on-disk result cache for sweep points.

A point's cache key is the sha256 of everything that determines its
result:

* the repro package version;
* the sweep name and :attr:`~repro.sweep.spec.SweepSpec.version`;
* the runner's module-qualified name;
* the canonical JSON of the point parameters;
* a fingerprint of every referenced machine model's LogGP/topology
  parameters (:func:`repro.machines.registry.machine_fingerprint`) — so
  recalibrating a machine invalidates exactly its points.

Entries are one JSON file each under ``<root>/<key[:2]>/<key>.json``
(git-friendly two-level fan-out).  Reads tolerate corrupt or truncated
files by treating them as misses; writes are atomic (tmp + rename) so a
killed parallel run never leaves a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.machines.registry import machine_fingerprint
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_json

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

# Repo-local by convention (gitignored); the CLI resolves it against cwd.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed store of point results (see module docstring)."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.write_errors = 0
        self._warned_write = False

    def key_for(self, spec: SweepSpec, point: SweepPoint) -> str:
        payload = {
            "repro": __version__,
            "sweep": spec.name,
            "sweep_version": spec.version,
            "runner": point.runner_id,
            "params": point.params_dict,
            "machines": {
                name: machine_fingerprint(name)
                for name in sorted(set(spec.machine_names(point)))
            },
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached value for ``key``, or None (counts a hit/miss)."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as f:
                value = json.load(f)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(value, dict):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: dict[str, Any]) -> None:
        """Atomically store ``value`` (must be JSON-serialisable).

        Storage failures (read-only cache dir, full disk, ...) never
        abort the sweep: the error is counted, surfaced once as a
        ``RuntimeWarning`` (plus a ``sweep.cache.write_errors`` counter
        on any ambient obs session), and execution continues uncached.
        Serialisation bugs (``TypeError``) still raise — they are caller
        errors, not environment faults.
        """
        text = json.dumps(value, default=float)
        path = self._path(key)
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(text)
            os.replace(tmp, path)
        except OSError as exc:
            self._note_write_error(exc, tmp)
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise

    def _note_write_error(self, exc: OSError, tmp: str | None) -> None:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self.write_errors += 1
        from repro import obs

        session = obs.current()
        if session is not None:
            session.metrics.counter("sweep.cache.write_errors").inc()
        if not self._warned_write:
            self._warned_write = True
            warnings.warn(
                f"result cache write to {self.root} failed ({exc}); "
                "continuing uncached",
                RuntimeWarning,
                stacklevel=3,
            )

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "write_errors": self.write_errors,
        }
