"""Sweep execution: serial or process-pool, cache-aware, observable.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` and
returns one :class:`SweepResult` per point **in grid order** — results
never depend on worker completion order, and per-point seeds derive from
point keys, so ``--jobs N`` output is identical to serial output.

When an ambient :class:`repro.obs.Obs` session is active, each sweep
feeds it: ``sweep.points.completed`` / ``sweep.points.failed`` /
``sweep.cache.hits`` / ``sweep.cache.misses`` counters, a
``sweep.point.seconds`` histogram, per-sweep wall-time and
worker-utilization gauges, and a ``sweep.<name>`` span.

Failure handling is explicit: with ``on_error="raise"`` (the default)
the first failing point aborts the sweep with :class:`SweepError`; with
``on_error="keep"`` failing points are *recorded* — their
:class:`SweepResult` carries ``error`` and an empty value — and the
sweep runs to completion (partial-result reporting).  A worker process
dying mid-point (segfault, ``os._exit``) breaks the whole process pool;
the executor rebuilds it and resubmits the unfinished points a bounded
number of times, then runs the stragglers one-per-pool so that only the
point actually killing its worker is marked failed.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Mapping
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro import obs
from repro.sweep.cache import ResultCache
from repro.sweep.config import _worker_init, current_execution
from repro.sweep.spec import PointRunner, SweepPoint, SweepSpec

__all__ = ["SweepError", "SweepResult", "SweepStats", "run_sweep"]

_UNSET = object()

# Seconds buckets for the per-point duration histogram.
_POINT_SECONDS_EDGES = (1e-3, 1e-2, 0.1, 1.0, 10.0)

# Pool rebuilds tolerated per sweep before unfinished points are failed.
_POOL_RETRIES = 2

# Poll interval for per-point timeout enforcement (parallel mode).
_TIMEOUT_TICK = 0.05

# Target chunks per worker slot when batching points into one submission.
# Chunking amortises per-future submission and pickling overhead (a cheap
# simulated point costs less than its own round trip through the pool,
# which is how parallel sweeps used to come out *slower* than serial) and
# lets a worker reuse per-process state — machine registries, backend
# tables — across its whole chunk.  >1 so stragglers can be rebalanced.
_CHUNK_FACTOR = 4


class SweepError(RuntimeError):
    """A point runner raised; carries the failing point's identity."""


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one point: its value plus execution provenance."""

    point: SweepPoint
    value: dict[str, Any]
    cached: bool
    duration: float  # seconds spent executing (0.0 for cache hits)
    error: str | None = None  # set when the point failed (on_error="keep")

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def params(self) -> dict[str, Any]:
        return self.point.params_dict


@dataclass(frozen=True)
class SweepStats:
    """Aggregate execution stats for one sweep run."""

    sweep: str
    npoints: int
    cache_hits: int
    executed: int
    wall_seconds: float
    jobs: int
    failed: int = 0

    @property
    def utilization(self) -> float:
        """Busy fraction of the worker slots over the sweep's wall time."""
        return 0.0 if self.wall_seconds <= 0 else min(
            1.0, self._busy / (self.wall_seconds * self.jobs)
        )

    _busy: float = 0.0

    def line(self) -> str:
        cached = f", {self.cache_hits} cached" if self.cache_hits else ""
        failed = f", {self.failed} FAILED" if self.failed else ""
        return (
            f"[sweep] {self.sweep}: {self.npoints} points{cached}{failed}, "
            f"jobs={self.jobs}, {self.wall_seconds:.2f}s, "
            f"utilization {self.utilization:.0%}"
        )


class _SpillBoard(list):
    """Result slots that stream every completed point to a JSONL file.

    ``run_sweep(..., spill_path=...)`` swaps its plain result list for
    one of these: each ``results[i] = SweepResult(...)`` assignment —
    cache hit, executed point, or recorded failure alike — appends one
    JSON line immediately (the :class:`repro.obs.JsonlSink` discipline:
    stream, retain nothing extra in memory).  Lines land in completion
    order; each carries its own ``params``, so readers never depend on
    file order.  Because cache hits are re-emitted, resuming an
    interrupted sweep with the same content-addressed cache rewrites a
    *complete* file — earlier points replay from cache in the same run.
    """

    def __init__(self, npoints: int, sweep: str, path: str | Path):
        super().__init__([None] * npoints)
        self.sweep = sweep
        self.path = Path(path)
        if self.path.parent != Path():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self.written = 0

    def __setitem__(self, i: int, result: SweepResult | None) -> None:
        super().__setitem__(i, result)
        if result is None or self._fh is None:
            return
        line = json.dumps(
            {
                "sweep": self.sweep,
                "index": i,
                "params": result.point.params_dict,
                "seed": result.point.seed,
                "value": result.value,
                "cached": result.cached,
                "error": result.error,
            },
            sort_keys=True,
            default=str,
        )
        self._fh.write(line)
        self._fh.write("\n")
        self._fh.flush()  # each line survives a mid-sweep crash
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _execute_point(
    runner: PointRunner, params: Mapping[str, Any], seed: int
) -> tuple[dict[str, Any], float]:
    """Run one point (in a worker or inline) and time it."""
    t0 = time.perf_counter()
    value = dict(runner(params, seed))
    return value, time.perf_counter() - t0


def _execute_chunk(items) -> list[tuple[bool, Any, float]]:
    """Run a batch of points in one worker submission.

    Per-point outcomes are ``(ok, value-or-error-message, duration)`` so
    a failing point never poisons the rest of its chunk — ``on_error``
    semantics are applied by the parent process.
    """
    out = []
    for runner, params, seed in items:
        t0 = time.perf_counter()
        try:
            value = dict(runner(params, seed))
        except Exception as exc:
            out.append(
                (False, f"{type(exc).__name__}: {exc}",
                 time.perf_counter() - t0)
            )
        else:
            out.append((True, value, time.perf_counter() - t0))
    return out


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | object = _UNSET,
    progress: Callable[[str], None] | None | object = _UNSET,
    on_error: str = "raise",
    timeout: float | None = None,
    spill_path: str | Path | None = None,
) -> list[SweepResult]:
    """Execute every point of ``spec``; return results in grid order.

    ``jobs``/``cache``/``progress`` default to the ambient
    :func:`~repro.sweep.config.execution` config (serial, uncached, and
    silent outside any ``execution()`` block).

    ``on_error="keep"`` records a failing point (``result.error`` set,
    empty value, never cached) instead of aborting the sweep.  A broken
    worker pool is rebuilt up to a bounded number of times either way;
    with ``"raise"`` exhausting the retries raises, with ``"keep"`` the
    still-unfinished points run isolated (one per single-worker pool) so
    only the true crasher is failed.

    ``timeout`` bounds each point's wall-clock seconds in parallel mode
    (the result is marked/raised as timed out; the stuck worker keeps its
    slot until it finishes, so the *next* points may start late).  Serial
    execution cannot preempt a running point, so ``timeout`` is ignored
    there.

    ``spill_path`` streams every completed point (cache hits included)
    to a JSON Lines file as it lands, flushed per line — a crash leaves
    a valid partial file, and re-running the sweep against the same
    content-addressed cache regenerates a complete one (interrupted
    points replay from cache).  See :class:`_SpillBoard`.
    """
    cfg = current_execution()
    jobs = cfg.jobs if jobs is None else jobs
    cache = cfg.cache if cache is _UNSET else cache
    progress = cfg.progress if progress is _UNSET else progress
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if on_error not in ("raise", "keep"):
        raise ValueError(f'on_error must be "raise" or "keep", got {on_error!r}')
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")

    points = spec.iter_points()
    session = obs.current()
    span = session.span(f"sweep.{spec.name}") if session else nullcontext()
    t_start = time.perf_counter()
    results: list[SweepResult | None]
    if spill_path is not None:
        results = _SpillBoard(len(points), spec.name, spill_path)
    else:
        results = [None] * len(points)
    pending: list[tuple[int, SweepPoint, str | None]] = []
    hits = 0

    try:
        with span:
            for i, pt in enumerate(points):
                key = None
                if cache is not None:
                    key = cache.key_for(spec, pt)
                    value = cache.get(key)
                    if value is not None:
                        results[i] = SweepResult(
                            pt, value, cached=True, duration=0.0
                        )
                        hits += 1
                        continue
                pending.append((i, pt, key))

            if progress and points:
                progress(
                    f"[sweep] {spec.name}: {len(points)} points "
                    f"({hits} cached, {len(pending)} to run), jobs={jobs}"
                )

            if jobs > 1 and len(pending) > 1:
                _run_parallel(
                    spec, pending, results, cache, cfg, jobs, on_error, timeout
                )
            else:
                _run_serial(spec, pending, results, cache, session, on_error)
    finally:
        if isinstance(results, _SpillBoard):
            results.close()

    wall = time.perf_counter() - t_start
    done = [r for r in results if r is not None]
    busy = sum(r.duration for r in done)
    failed = sum(1 for r in done if r.error is not None)
    stats = SweepStats(
        sweep=spec.name,
        npoints=len(points),
        cache_hits=hits,
        executed=len(pending),
        wall_seconds=wall,
        jobs=jobs,
        failed=failed,
        _busy=busy,
    )
    if session:
        m = session.metrics
        m.counter("sweep.points.completed").inc(len(points))
        m.counter("sweep.points.failed").inc(failed)
        m.counter("sweep.cache.hits").inc(hits)
        m.counter("sweep.cache.misses").inc(len(pending))
        m.gauge(f"sweep.{spec.name}.wall_seconds").set(wall)
        m.gauge(f"sweep.{spec.name}.utilization").set(stats.utilization)
        hist = m.histogram("sweep.point.seconds", _POINT_SECONDS_EDGES)
        for r in done:
            if not r.cached and r.error is None:
                hist.observe(r.duration)
    if progress and points:
        progress(stats.line())
    return [r for r in results if r is not None]


def _store(
    results: list[SweepResult | None],
    cache: ResultCache | None,
    i: int,
    pt: SweepPoint,
    key: str | None,
    value: dict[str, Any],
    duration: float,
) -> None:
    if cache is not None and key is not None:
        cache.put(key, value)
    results[i] = SweepResult(pt, value, cached=False, duration=duration)


def _fail(
    results: list[SweepResult | None],
    i: int,
    pt: SweepPoint,
    message: str,
    duration: float = 0.0,
) -> None:
    results[i] = SweepResult(pt, {}, cached=False, duration=duration, error=message)


def _run_serial(spec, pending, results, cache, session, on_error) -> None:
    for i, pt, key in pending:
        span = (
            session.span(f"sweep.{spec.name}.point") if session else nullcontext()
        )
        t0 = time.perf_counter()
        try:
            with span:
                value, duration = _execute_point(pt.runner, pt.params_dict, pt.seed)
        except Exception as exc:
            if on_error == "raise":
                raise SweepError(f"sweep point {pt.label()} failed: {exc}") from exc
            _fail(
                results, i, pt,
                f"{type(exc).__name__}: {exc}",
                duration=time.perf_counter() - t0,
            )
            continue
        _store(results, cache, i, pt, key, value, duration)


def _run_parallel(
    spec, pending, results, cache, cfg, jobs, on_error, timeout
) -> None:
    # Use the ambient config's persistent pool when it matches the
    # requested width (so `repro run all --jobs N` reuses workers across
    # experiments); otherwise spin up a sweep-local pool.
    if cfg.jobs == jobs and current_execution() is cfg:
        pool, owned = cfg.pool(), False
    else:
        pool, owned = (
            ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init),
            True,
        )
    queue = list(pending)
    crashes = 0
    abandoned = 0
    try:
        while queue:
            try:
                abandoned += _drain_pool(
                    pool, spec, queue, results, cache, on_error, timeout, jobs
                )
                break
            except BrokenProcessPool as exc:
                # A worker died mid-point, poisoning every in-flight
                # future — the culprit is unidentifiable from here.
                # Rebuild the pool and resubmit whatever has no result
                # yet; once the retry budget is spent, fall back to
                # running each straggler in its own single-worker pool so
                # only the point that actually kills its worker fails.
                crashes += 1
                queue = [p for p in queue if results[p[0]] is None]
                if owned:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(
                        max_workers=jobs, initializer=_worker_init
                    )
                else:
                    cfg.reset_pool()
                    pool = cfg.pool()
                if crashes > _POOL_RETRIES:
                    if on_error == "raise":
                        raise SweepError(
                            f"sweep {spec.name}: worker pool crashed "
                            f"{crashes} times; {len(queue)} point(s) unfinished"
                        ) from exc
                    _run_isolated(queue, results, cache)
                    break
    finally:
        if owned:
            # Abandoned (timed-out) futures still occupy workers; waiting
            # on them would stall the caller indefinitely.
            pool.shutdown(wait=abandoned == 0, cancel_futures=abandoned > 0)


def _run_isolated(queue, results, cache) -> None:
    """Last-resort pass after repeated pool crashes (``on_error="keep"``).

    Each unfinished point gets a fresh single-worker pool: a point that
    crashes its worker fails alone, and every innocent point that was
    merely in flight when a neighbour died still completes.
    """
    for i, pt, key in queue:
        solo = ProcessPoolExecutor(max_workers=1, initializer=_worker_init)
        try:
            fut = solo.submit(_execute_point, pt.runner, pt.params_dict, pt.seed)
            try:
                value, duration = fut.result()
            except BrokenProcessPool:
                _fail(
                    results, i, pt,
                    "worker process crashed (BrokenProcessPool) "
                    "running this point in isolation",
                )
                continue
            except Exception as exc:
                _fail(results, i, pt, f"{type(exc).__name__}: {exc}")
                continue
            _store(results, cache, i, pt, key, value, duration)
        finally:
            solo.shutdown(wait=False, cancel_futures=True)


def _chunks(queue, jobs) -> list[list]:
    """Split pending points into ~``jobs * _CHUNK_FACTOR`` contiguous runs."""
    n = min(len(queue), max(1, jobs * _CHUNK_FACTOR))
    size = -(-len(queue) // n)  # ceil division
    return [queue[k : k + size] for k in range(0, len(queue), size)]


def _drain_chunked(pool, spec, queue, results, cache, on_error, jobs) -> None:
    """Submit the queue as per-worker chunks and collect every outcome.

    A :class:`BrokenProcessPool` from any chunk propagates to the caller's
    rebuild loop; points of the broken chunk that have no result yet are
    resubmitted with the rest of the unfinished queue.
    """
    futures = {
        pool.submit(
            _execute_chunk,
            [(pt.runner, pt.params_dict, pt.seed) for _, pt, _ in chunk],
        ): chunk
        for chunk in _chunks(queue, jobs)
    }
    not_done = set(futures)
    while not_done:
        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
        for fut in done:
            chunk = futures[fut]
            outcomes = fut.result()  # BrokenProcessPool propagates
            for (i, pt, key), (ok, payload, duration) in zip(chunk, outcomes):
                if ok:
                    _store(results, cache, i, pt, key, payload, duration)
                elif on_error == "raise":
                    for f in not_done:
                        f.cancel()
                    raise SweepError(
                        f"sweep point {pt.label()} failed: {payload}"
                    )
                else:
                    _fail(results, i, pt, payload, duration=duration)


def _drain_pool(
    pool, spec, queue, results, cache, on_error, timeout, jobs
) -> int:
    """Submit ``queue`` and collect everything; returns #abandoned futures.

    Without a per-point ``timeout`` the queue is dispatched as chunks
    (see :func:`_execute_chunk`); timeout enforcement needs a future per
    point, so that path keeps the one-point-one-future protocol.
    """
    if timeout is None:
        _drain_chunked(pool, spec, queue, results, cache, on_error, jobs)
        return 0
    futures = {
        pool.submit(_execute_point, pt.runner, pt.params_dict, pt.seed): (
            i,
            pt,
            key,
        )
        for i, pt, key in queue
    }
    not_done = set(futures)
    started: dict[Any, float] = {}
    abandoned = 0
    while not_done:
        tick = _TIMEOUT_TICK if timeout is not None else None
        done, not_done = wait(not_done, timeout=tick, return_when=FIRST_COMPLETED)
        for fut in done:
            i, pt, key = futures[fut]
            try:
                value, duration = fut.result()
            except BrokenProcessPool:
                raise
            except Exception as exc:
                if on_error == "raise":
                    for f in not_done:
                        f.cancel()
                    raise SweepError(
                        f"sweep point {pt.label()} failed: {exc}"
                    ) from exc
                _fail(results, i, pt, f"{type(exc).__name__}: {exc}")
                continue
            _store(results, cache, i, pt, key, value, duration)
        if timeout is None:
            continue
        # ProcessPoolExecutor cannot interrupt a running worker, so a
        # timeout abandons the future: the point is recorded as timed out
        # and its (eventual) result is discarded.
        now = time.perf_counter()
        for fut in not_done:
            if fut.running() and fut not in started:
                started[fut] = now
        expired = [
            f for f in not_done if f in started and now - started[f] > timeout
        ]
        for fut in expired:
            i, pt, _key = futures[fut]
            not_done.discard(fut)
            abandoned += 1
            if on_error == "raise":
                for f in not_done:
                    f.cancel()
                raise SweepError(
                    f"sweep point {pt.label()} timed out after {timeout:g}s"
                )
            _fail(
                results, i, pt,
                f"timed out after {timeout:g}s", duration=timeout,
            )
    return abandoned
