"""Sweep execution: serial or process-pool, cache-aware, observable.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` and
returns one :class:`SweepResult` per point **in grid order** — results
never depend on worker completion order, and per-point seeds derive from
point keys, so ``--jobs N`` output is identical to serial output.

When an ambient :class:`repro.obs.Obs` session is active, each sweep
feeds it: ``sweep.points.completed`` / ``sweep.cache.hits`` /
``sweep.cache.misses`` counters, a ``sweep.point.seconds`` histogram,
per-sweep wall-time and worker-utilization gauges, and a
``sweep.<name>`` span.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from concurrent.futures import FIRST_COMPLETED, wait
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.sweep.cache import ResultCache
from repro.sweep.config import current_execution
from repro.sweep.spec import PointRunner, SweepPoint, SweepSpec

__all__ = ["SweepError", "SweepResult", "SweepStats", "run_sweep"]

_UNSET = object()

# Seconds buckets for the per-point duration histogram.
_POINT_SECONDS_EDGES = (1e-3, 1e-2, 0.1, 1.0, 10.0)


class SweepError(RuntimeError):
    """A point runner raised; carries the failing point's identity."""


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one point: its value plus execution provenance."""

    point: SweepPoint
    value: dict[str, Any]
    cached: bool
    duration: float  # seconds spent executing (0.0 for cache hits)

    @property
    def params(self) -> dict[str, Any]:
        return self.point.params_dict


@dataclass(frozen=True)
class SweepStats:
    """Aggregate execution stats for one sweep run."""

    sweep: str
    npoints: int
    cache_hits: int
    executed: int
    wall_seconds: float
    jobs: int

    @property
    def utilization(self) -> float:
        """Busy fraction of the worker slots over the sweep's wall time."""
        return 0.0 if self.wall_seconds <= 0 else min(
            1.0, self._busy / (self.wall_seconds * self.jobs)
        )

    _busy: float = 0.0

    def line(self) -> str:
        cached = f", {self.cache_hits} cached" if self.cache_hits else ""
        return (
            f"[sweep] {self.sweep}: {self.npoints} points{cached}, "
            f"jobs={self.jobs}, {self.wall_seconds:.2f}s, "
            f"utilization {self.utilization:.0%}"
        )


def _execute_point(
    runner: PointRunner, params: Mapping[str, Any], seed: int
) -> tuple[dict[str, Any], float]:
    """Run one point (in a worker or inline) and time it."""
    t0 = time.perf_counter()
    value = dict(runner(params, seed))
    return value, time.perf_counter() - t0


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int | None = None,
    cache: ResultCache | None | object = _UNSET,
    progress: Callable[[str], None] | None | object = _UNSET,
) -> list[SweepResult]:
    """Execute every point of ``spec``; return results in grid order.

    ``jobs``/``cache``/``progress`` default to the ambient
    :func:`~repro.sweep.config.execution` config (serial, uncached, and
    silent outside any ``execution()`` block).
    """
    cfg = current_execution()
    jobs = cfg.jobs if jobs is None else jobs
    cache = cfg.cache if cache is _UNSET else cache
    progress = cfg.progress if progress is _UNSET else progress
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    points = spec.iter_points()
    session = obs.current()
    span = session.span(f"sweep.{spec.name}") if session else nullcontext()
    t_start = time.perf_counter()
    results: list[SweepResult | None] = [None] * len(points)
    pending: list[tuple[int, SweepPoint, str | None]] = []
    hits = 0

    with span:
        for i, pt in enumerate(points):
            key = None
            if cache is not None:
                key = cache.key_for(spec, pt)
                value = cache.get(key)
                if value is not None:
                    results[i] = SweepResult(pt, value, cached=True, duration=0.0)
                    hits += 1
                    continue
            pending.append((i, pt, key))

        if progress and points:
            progress(
                f"[sweep] {spec.name}: {len(points)} points "
                f"({hits} cached, {len(pending)} to run), jobs={jobs}"
            )

        if jobs > 1 and len(pending) > 1:
            _run_parallel(spec, pending, results, cache, cfg, jobs)
        else:
            _run_serial(spec, pending, results, cache, session)

    wall = time.perf_counter() - t_start
    done = [r for r in results if r is not None]
    busy = sum(r.duration for r in done)
    stats = SweepStats(
        sweep=spec.name,
        npoints=len(points),
        cache_hits=hits,
        executed=len(pending),
        wall_seconds=wall,
        jobs=jobs,
        _busy=busy,
    )
    if session:
        m = session.metrics
        m.counter("sweep.points.completed").inc(len(points))
        m.counter("sweep.cache.hits").inc(hits)
        m.counter("sweep.cache.misses").inc(len(pending))
        m.gauge(f"sweep.{spec.name}.wall_seconds").set(wall)
        m.gauge(f"sweep.{spec.name}.utilization").set(stats.utilization)
        hist = m.histogram("sweep.point.seconds", _POINT_SECONDS_EDGES)
        for r in done:
            if not r.cached:
                hist.observe(r.duration)
    if progress and points:
        progress(stats.line())
    return [r for r in results if r is not None]


def _store(
    results: list[SweepResult | None],
    cache: ResultCache | None,
    i: int,
    pt: SweepPoint,
    key: str | None,
    value: dict[str, Any],
    duration: float,
) -> None:
    if cache is not None and key is not None:
        cache.put(key, value)
    results[i] = SweepResult(pt, value, cached=False, duration=duration)


def _run_serial(spec, pending, results, cache, session) -> None:
    for i, pt, key in pending:
        span = (
            session.span(f"sweep.{spec.name}.point") if session else nullcontext()
        )
        try:
            with span:
                value, duration = _execute_point(pt.runner, pt.params_dict, pt.seed)
        except Exception as exc:
            raise SweepError(f"sweep point {pt.label()} failed: {exc}") from exc
        _store(results, cache, i, pt, key, value, duration)


def _run_parallel(spec, pending, results, cache, cfg, jobs) -> None:
    # Use the ambient config's persistent pool when it matches the
    # requested width (so `repro run all --jobs N` reuses workers across
    # experiments); otherwise spin up a sweep-local pool.
    if cfg.jobs == jobs and current_execution() is cfg:
        pool, owned = cfg.pool(), False
    else:
        from concurrent.futures import ProcessPoolExecutor

        from repro.sweep.config import _worker_init

        pool, owned = (
            ProcessPoolExecutor(max_workers=jobs, initializer=_worker_init),
            True,
        )
    try:
        futures = {
            pool.submit(_execute_point, pt.runner, pt.params_dict, pt.seed): (
                i,
                pt,
                key,
            )
            for i, pt, key in pending
        }
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                i, pt, key = futures[fut]
                try:
                    value, duration = fut.result()
                except Exception as exc:
                    for f in not_done:
                        f.cancel()
                    raise SweepError(
                        f"sweep point {pt.label()} failed: {exc}"
                    ) from exc
                _store(results, cache, i, pt, key, value, duration)
    finally:
        if owned:
            pool.shutdown(wait=True)
