"""Network fabric model: LogGP links, topologies, routing, contention."""

from repro.net.fabric import Delivery, Fabric
from repro.net.link import Channel, Link
from repro.net.loggp import LinkParams, LogGPParams
from repro.net.topology import Route, TopologySpec

__all__ = [
    "Delivery",
    "Fabric",
    "Channel",
    "Link",
    "LinkParams",
    "LogGPParams",
    "Route",
    "TopologySpec",
]
