"""Network fabric model: LogGP links, topologies, routing, contention."""

from repro.net.congestion import CongestionConfig, CongestionControl
from repro.net.fabric import Delivery, Fabric
from repro.net.link import Channel, Link
from repro.net.loggp import LinkParams, LogGPParams
from repro.net.routing import (
    AdaptiveRouting,
    FailoverRouting,
    MinimalRouting,
    RoutingPolicy,
    get_routing,
)
from repro.net.topology import (
    FabricBlueprint,
    Route,
    TopologySpec,
    dragonfly,
    fat_tree,
    torus,
)

__all__ = [
    "AdaptiveRouting",
    "CongestionConfig",
    "CongestionControl",
    "Delivery",
    "Fabric",
    "FabricBlueprint",
    "FailoverRouting",
    "Channel",
    "Link",
    "LinkParams",
    "LogGPParams",
    "MinimalRouting",
    "Route",
    "RoutingPolicy",
    "TopologySpec",
    "dragonfly",
    "fat_tree",
    "torus",
    "get_routing",
]
