"""Routing policies: how a transfer picks its path through the fabric.

The fabric asks its policy for a :class:`~repro.net.topology.Route` on
*every* transfer (a routing decision), so policies may pick different paths
for the same (src, dst) pair over time:

* :class:`MinimalRouting` — the static minimum-latency path.  This is the
  default and is byte-identical to the pre-policy behaviour: it returns the
  exact cached :meth:`TopologySpec.route` object, so every committed golden
  is unchanged.
* :class:`AdaptiveRouting` — UGAL-style: at decision time, compare the
  minimal path against Valiant detours through deterministic intermediate
  candidates, estimating each path's head-arrival time from the current
  per-channel queue state, and take the cheapest (minimal wins ties).  The
  decision is a pure function of the simulation clock and link state, so
  same-seed runs replay bit-identically.

Each non-minimal path is costed fresh with
:meth:`TopologySpec.route_via` — bottleneck latency/``G`` come from the
hops actually taken, never from the cached minimal pair.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.faults.plan import FaultError
from repro.net.topology import Route

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

__all__ = [
    "RoutingPolicy",
    "MinimalRouting",
    "AdaptiveRouting",
    "FailoverRouting",
    "get_routing",
]

# Score penalty (seconds) for a candidate path whose hop is hard-down at
# decision time: large enough that any live alternative wins, finite so
# scoring stays a total order when *every* candidate is dead.
_HARD_DOWN_PENALTY = 1.0


@runtime_checkable
class RoutingPolicy(Protocol):
    """Strategy interface the fabric consults once per transfer."""

    name: str

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        """Pick the path for one transfer of ``nbytes`` at time ``now``."""
        ...


class MinimalRouting:
    """Static minimum-latency routing (the golden-pinned default)."""

    name = "minimal"

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        return fabric.topology.route(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MinimalRouting()"


class AdaptiveRouting:
    """UGAL-style adaptive routing: minimal vs Valiant by queue estimate.

    For each decision the policy scores the minimal path and up to
    ``candidates`` Valiant paths (minimal to a deterministic intermediate,
    then minimal onward).  A path's score is its estimated head-arrival
    time: walk the hops accumulating ``max(queue-free time, t) + latency``
    from the live channel state, plus the tail serialisation
    ``nbytes * G`` of the path.  Detours therefore win only when the
    minimal path's queues out-cost the extra hops — exactly UGAL's
    2x-path-length-vs-queue-depth tradeoff, expressed in seconds.

    Intermediates are drawn from a keyed hash of ``(src, dst, decision
    sequence number)``: deterministic given the simulation history, varying
    across decisions so flows spread over distinct detours.
    """

    name = "adaptive"

    def __init__(self, candidates: int = 2):
        if candidates < 1:
            raise ValueError(f"candidates must be >= 1, got {candidates}")
        self.candidates = candidates
        self._decisions = 0
        # Per-topology cache of the endpoints eligible as intermediates
        # (switch/router endpoints, i.e. non-leaf degree >= 2).
        self._mids: list[str] | None = None

    def _intermediates(self, fabric: "Fabric") -> list[str]:
        if self._mids is None:
            topo = fabric.topology
            g = topo._graph
            # Switch/router endpoints only: multi-degree, not a node-internal
            # device (cluster convention prefixes those with "n{i}."), and
            # not an injecting compute endpoint.  Detouring *through* another
            # node's NIC or socket is not a thing real fabrics do.
            self._mids = sorted(
                n
                for n in g.nodes
                if g.degree(n) >= 2 and "." not in n and n not in topo.injection
            )
        return self._mids

    def _pick(self, src: str, dst: str, pool: list[str], n: int) -> list[str]:
        """``n`` deterministic intermediate candidates for this decision."""
        if not pool:
            return []
        picked: list[str] = []
        for i in range(min(n, len(pool))):
            h = hashlib.blake2b(
                f"{src}|{dst}|{self._decisions}|{i}".encode(), digest_size=8
            ).digest()
            cand = pool[int.from_bytes(h, "big") % len(pool)]
            if cand not in picked:
                picked.append(cand)
        return picked

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        topo = fabric.topology
        minimal = topo.route(src, dst)
        self._decisions += 1
        if minimal.nhops == 0:
            return minimal
        best = minimal
        best_score = self._score(fabric, minimal, nbytes, now)
        on_minimal = {src, dst} | {v for _u, v in minimal.hops}
        pool = [m for m in self._intermediates(fabric) if m not in on_minimal]
        for mid in self._pick(src, dst, pool, self.candidates):
            path = self._valiant_path(topo, src, mid, dst)
            if path is None:
                continue
            route = topo.route_via(path)
            score = self._score(fabric, route, nbytes, now)
            if score < best_score:
                best, best_score = route, score
        return best

    @staticmethod
    def _valiant_path(topo, src: str, mid: str, dst: str) -> list[str] | None:
        """Minimal(src->mid) + minimal(mid->dst), rejected if it revisits
        an endpoint (a looping detour can deadlock cut-through orderings)."""
        try:
            first = topo.shortest_path(src, mid)
            second = topo.shortest_path(mid, dst)
        except KeyError:
            return None
        path = first + second[1:]
        if len(set(path)) != len(path):
            return None
        return path

    @staticmethod
    def _score(fabric: "Fabric", route: Route, nbytes: float, now: float) -> float:
        """Estimated tail-arrival time of ``nbytes`` along ``route``.

        The estimate walks the hops the same way a reservation would:
        a head arriving inside a transient ``down`` window waits it out,
        so UGAL never *prefers* a link mid-outage; a hop that is
        hard-down (element failure) takes a large fixed penalty, so any
        live candidate outranks a dead one.
        """
        t = now
        for u, v in route.hops:
            channel = fabric.link(u, v).channel(u, v)
            t = max(t, channel.utilization_until)
            lf = channel.faults
            if lf is not None:
                for a, b in lf.down:
                    if a <= t < b:
                        t = b
            if channel.hard_down_at(t):
                t += _HARD_DOWN_PENALTY
            t += channel.params.latency
        return t + nbytes * route.G

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AdaptiveRouting(candidates={self.candidates})"


class FailoverRouting:
    """Failure-detecting routing: minimal until a link is declared dead,
    then re-route around the dead set.

    Detection is timeout-based and driven purely by transfer-attempt
    history: every retransmission timeout the fabric observes on a link
    is reported through :meth:`on_drop` (mirroring how UGAL reads live
    queue state), and a link whose consecutive-drop count reaches
    ``suspect_after`` is declared dead at that detection time.  The
    policy then invalidates the topology's route/path caches and serves
    paths computed on the live subgraph via
    :meth:`~repro.net.topology.TopologySpec.shortest_path_avoiding` +
    :meth:`~repro.net.topology.TopologySpec.route_via`.  When the dead
    set partitions a pair, :class:`~repro.faults.FaultError` is raised —
    failover only falls back to failure once no live path exists.

    With no dead links the policy returns the exact cached minimal
    :class:`Route` object, so a fault-free run is bit-identical to the
    default (golden-pinned) path and the no-fault overhead is one dict
    lookup per decision.

    ``probe_interval`` (seconds) optionally re-admits a dead link that
    age: the next decision after the interval probes it again (a fixed
    recovery model — deterministic given the sim clock).  ``None``
    (default) never re-admits.

    All state transitions are pure functions of the simulated history,
    so same-seed runs replay bit-identically.
    """

    name = "failover"
    # The fabric re-routes every retry attempt through a policy that
    # sets this flag (a static policy keeps the attempt-loop behaviour
    # that existed before failover routing).
    reroutes = True

    def __init__(self, suspect_after: int = 2, probe_interval: float | None = None):
        if suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if probe_interval is not None and probe_interval <= 0:
            raise ValueError(
                f"probe_interval must be > 0 or None, got {probe_interval}"
            )
        self.suspect_after = suspect_after
        self.probe_interval = probe_interval
        self.dead: dict[frozenset[str], float] = {}  # link key -> detection time
        self.drop_counts: dict[frozenset[str], int] = {}
        self.detections = 0
        self.failovers = 0  # decisions served by a non-minimal live path
        self.probes = 0
        self.partitions = 0
        self._cache: dict[tuple[str, str], Route] = {}

    # -- failure detector (fed by the fabric's retry loop) ---------------

    def on_drop(self, fabric: "Fabric", link_key: frozenset, now: float) -> None:
        """One retransmission timeout expired on ``link_key`` at ``now``."""
        n = self.drop_counts.get(link_key, 0) + 1
        self.drop_counts[link_key] = n
        if link_key not in self.dead and n >= self.suspect_after:
            self.dead[link_key] = now
            self.detections += 1
            self._cache.clear()
            fabric.topology.invalidate_routes()

    def _probe(self, fabric: "Fabric", now: float) -> None:
        revived = [
            key
            for key, t in self.dead.items()
            if now - t >= self.probe_interval
        ]
        if revived:
            for key in revived:
                del self.dead[key]
                self.drop_counts[key] = 0
            self.probes += len(revived)
            self._cache.clear()
            fabric.topology.invalidate_routes()

    # -- routing decisions ----------------------------------------------

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        if self.probe_interval is not None and self.dead:
            self._probe(fabric, now)
        topo = fabric.topology
        if not self.dead:
            # Fault-free fast path: the exact cached minimal Route
            # (bit-identical to the no-policy default).
            return topo.route(src, dst)
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        minimal = topo.route(src, dst)
        if minimal.nhops == 0 or not any(
            frozenset(hop) in self.dead for hop in minimal.hops
        ):
            route = minimal
        else:
            try:
                path = topo.shortest_path_avoiding(src, dst, self.dead)
            except KeyError:
                self.partitions += 1
                raise FaultError(
                    f"no failover path {src!r} -> {dst!r}: "
                    f"{len(self.dead)} dead link(s) partition the topology"
                ) from None
            route = topo.route_via(path)
            self.failovers += 1
        self._cache[key] = route
        return route

    # -- observability ----------------------------------------------------

    def stats(self) -> dict[str, float]:
        return {
            "detections": float(self.detections),
            "dead_links": float(len(self.dead)),
            "failovers": float(self.failovers),
            "probes": float(self.probes),
            "partitions": float(self.partitions),
        }

    def metrics_snapshot(self) -> dict[str, float]:
        """Snapshot-time collector payload (``routing.failover.*``)."""
        out = {f"routing.failover.{k}": v for k, v in self.stats().items()}
        for key, t in self.dead.items():
            lo, hi = sorted(key)
            out[f"routing.failover.dead.{lo}<->{hi}"] = t
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FailoverRouting(suspect_after={self.suspect_after}, "
            f"probe_interval={self.probe_interval}, dead={len(self.dead)})"
        )


_POLICIES = {
    "minimal": MinimalRouting,
    "adaptive": AdaptiveRouting,
    "failover": FailoverRouting,
}


def get_routing(policy: "str | RoutingPolicy | None") -> "RoutingPolicy | None":
    """Resolve a policy name (``"minimal"``/``"adaptive"``/``"failover"``),
    pass through a policy instance, and map ``None`` to ``None`` (the
    fabric's built-in minimal fast path)."""
    if policy is None or not isinstance(policy, str):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; valid: {sorted(_POLICIES)}"
        ) from None
