"""Routing policies: how a transfer picks its path through the fabric.

The fabric asks its policy for a :class:`~repro.net.topology.Route` on
*every* transfer (a routing decision), so policies may pick different paths
for the same (src, dst) pair over time:

* :class:`MinimalRouting` — the static minimum-latency path.  This is the
  default and is byte-identical to the pre-policy behaviour: it returns the
  exact cached :meth:`TopologySpec.route` object, so every committed golden
  is unchanged.
* :class:`AdaptiveRouting` — UGAL-style: at decision time, compare the
  minimal path against Valiant detours through deterministic intermediate
  candidates, estimating each path's head-arrival time from the current
  per-channel queue state, and take the cheapest (minimal wins ties).  The
  decision is a pure function of the simulation clock and link state, so
  same-seed runs replay bit-identically.

Each non-minimal path is costed fresh with
:meth:`TopologySpec.route_via` — bottleneck latency/``G`` come from the
hops actually taken, never from the cached minimal pair.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.net.topology import Route

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric

__all__ = ["RoutingPolicy", "MinimalRouting", "AdaptiveRouting", "get_routing"]


@runtime_checkable
class RoutingPolicy(Protocol):
    """Strategy interface the fabric consults once per transfer."""

    name: str

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        """Pick the path for one transfer of ``nbytes`` at time ``now``."""
        ...


class MinimalRouting:
    """Static minimum-latency routing (the golden-pinned default)."""

    name = "minimal"

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        return fabric.topology.route(src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "MinimalRouting()"


class AdaptiveRouting:
    """UGAL-style adaptive routing: minimal vs Valiant by queue estimate.

    For each decision the policy scores the minimal path and up to
    ``candidates`` Valiant paths (minimal to a deterministic intermediate,
    then minimal onward).  A path's score is its estimated head-arrival
    time: walk the hops accumulating ``max(queue-free time, t) + latency``
    from the live channel state, plus the tail serialisation
    ``nbytes * G`` of the path.  Detours therefore win only when the
    minimal path's queues out-cost the extra hops — exactly UGAL's
    2x-path-length-vs-queue-depth tradeoff, expressed in seconds.

    Intermediates are drawn from a keyed hash of ``(src, dst, decision
    sequence number)``: deterministic given the simulation history, varying
    across decisions so flows spread over distinct detours.
    """

    name = "adaptive"

    def __init__(self, candidates: int = 2):
        if candidates < 1:
            raise ValueError(f"candidates must be >= 1, got {candidates}")
        self.candidates = candidates
        self._decisions = 0
        # Per-topology cache of the endpoints eligible as intermediates
        # (switch/router endpoints, i.e. non-leaf degree >= 2).
        self._mids: list[str] | None = None

    def _intermediates(self, fabric: "Fabric") -> list[str]:
        if self._mids is None:
            topo = fabric.topology
            g = topo._graph
            # Switch/router endpoints only: multi-degree, not a node-internal
            # device (cluster convention prefixes those with "n{i}."), and
            # not an injecting compute endpoint.  Detouring *through* another
            # node's NIC or socket is not a thing real fabrics do.
            self._mids = sorted(
                n
                for n in g.nodes
                if g.degree(n) >= 2 and "." not in n and n not in topo.injection
            )
        return self._mids

    def _pick(self, src: str, dst: str, pool: list[str], n: int) -> list[str]:
        """``n`` deterministic intermediate candidates for this decision."""
        if not pool:
            return []
        picked: list[str] = []
        for i in range(min(n, len(pool))):
            h = hashlib.blake2b(
                f"{src}|{dst}|{self._decisions}|{i}".encode(), digest_size=8
            ).digest()
            cand = pool[int.from_bytes(h, "big") % len(pool)]
            if cand not in picked:
                picked.append(cand)
        return picked

    def route(
        self, fabric: "Fabric", src: str, dst: str, nbytes: float, now: float
    ) -> Route:
        topo = fabric.topology
        minimal = topo.route(src, dst)
        self._decisions += 1
        if minimal.nhops == 0:
            return minimal
        best = minimal
        best_score = self._score(fabric, minimal, nbytes, now)
        on_minimal = {src, dst} | {v for _u, v in minimal.hops}
        pool = [m for m in self._intermediates(fabric) if m not in on_minimal]
        for mid in self._pick(src, dst, pool, self.candidates):
            path = self._valiant_path(topo, src, mid, dst)
            if path is None:
                continue
            route = topo.route_via(path)
            score = self._score(fabric, route, nbytes, now)
            if score < best_score:
                best, best_score = route, score
        return best

    @staticmethod
    def _valiant_path(topo, src: str, mid: str, dst: str) -> list[str] | None:
        """Minimal(src->mid) + minimal(mid->dst), rejected if it revisits
        an endpoint (a looping detour can deadlock cut-through orderings)."""
        try:
            first = topo.shortest_path(src, mid)
            second = topo.shortest_path(mid, dst)
        except KeyError:
            return None
        path = first + second[1:]
        if len(set(path)) != len(path):
            return None
        return path

    @staticmethod
    def _score(fabric: "Fabric", route: Route, nbytes: float, now: float) -> float:
        """Estimated tail-arrival time of ``nbytes`` along ``route``."""
        t = now
        for u, v in route.hops:
            channel = fabric.link(u, v).channel(u, v)
            t = max(t, channel.utilization_until) + channel.params.latency
        return t + nbytes * route.G

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AdaptiveRouting(candidates={self.candidates})"


_POLICIES = {
    "minimal": MinimalRouting,
    "adaptive": AdaptiveRouting,
}


def get_routing(policy: "str | RoutingPolicy | None") -> "RoutingPolicy | None":
    """Resolve a policy name (``"minimal"``/``"adaptive"``), pass through a
    policy instance, and map ``None`` to ``None`` (the fabric's built-in
    minimal fast path)."""
    if policy is None or not isinstance(policy, str):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {policy!r}; valid: {sorted(_POLICIES)}"
        ) from None
