"""Node topology: a graph of endpoints connected by LogGP links.

Endpoints are string-named devices: CPU sockets (``"cpu0"``), GPUs
(``"gpu3"``), NICs (``"nic0"``).  The machine models in ``repro.machines``
build one :class:`TopologySpec` each from the paper's Fig. 2 node diagrams.

Routing is static shortest-path by latency (computed once with networkx and
cached); the paper's node fabrics are small enough that this is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.net.loggp import LinkParams

__all__ = ["TopologySpec", "Route"]


@dataclass(frozen=True)
class Route:
    """A resolved path: the ordered endpoints and per-hop link parameters."""

    src: str
    dst: str
    hops: tuple[tuple[str, str], ...]  # directed (u, v) pairs
    latency: float  # sum of per-hop latencies
    bandwidth: float  # min per-hop aggregate bandwidth (bottleneck)
    message_bandwidth: float  # min per-hop single-sub-channel bandwidth
    gap: float  # max per-hop gap

    @property
    def nhops(self) -> int:
        return len(self.hops)

    @property
    def G(self) -> float:
        """Per-byte time one message observes (bottleneck sub-channel)."""
        return 1.0 / self.message_bandwidth


@dataclass
class TopologySpec:
    """Declarative description of a node/system fabric.

    Build with :meth:`add_link`; query with :meth:`route`.  Loopback routes
    (``src == dst``) are legal and resolve to a zero-hop route whose
    parameters come from ``loopback`` (an on-device memcpy model).
    """

    name: str
    loopback: LinkParams = field(
        default_factory=lambda: LinkParams(latency=1e-7, bandwidth=200e9, name="local")
    )
    injection: dict[str, LinkParams] = field(default_factory=dict)
    _links: dict[frozenset[str], LinkParams] = field(default_factory=dict)
    _graph: nx.Graph = field(default_factory=nx.Graph)
    _route_cache: dict[tuple[str, str], Route] = field(default_factory=dict)

    def add_link(self, a: str, b: str, params: LinkParams) -> None:
        """Connect endpoints ``a`` and ``b`` (undirected, full duplex)."""
        if a == b:
            raise ValueError(f"cannot link endpoint {a!r} to itself")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"duplicate link {a!r}<->{b!r} in topology {self.name!r}")
        self._links[key] = params
        self._graph.add_edge(a, b, weight=params.latency, params=params)
        self._route_cache.clear()

    def set_injection(self, endpoint: str, params: LinkParams) -> None:
        """Give ``endpoint`` a serialised injection port.

        All messages leaving the endpoint stream through this port at
        ``params.bandwidth`` before fanning out onto per-peer links.  Models
        the copy/DMA engine an endpoint funnels traffic through; omitting it
        means injection is unconstrained.
        """
        self.injection[endpoint] = params

    @property
    def endpoints(self) -> list[str]:
        return sorted(self._graph.nodes)

    @property
    def links(self) -> dict[frozenset[str], LinkParams]:
        return dict(self._links)

    def link_params(self, a: str, b: str) -> LinkParams:
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link {a!r}<->{b!r} in topology {self.name!r}")
        return self._links[key]

    def has_endpoint(self, name: str) -> bool:
        return name in self._graph

    def route(self, src: str, dst: str) -> Route:
        """Resolve the (cached) minimum-latency route ``src -> dst``."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            route = Route(
                src=src,
                dst=dst,
                hops=(),
                latency=self.loopback.latency,
                bandwidth=self.loopback.bandwidth,
                message_bandwidth=self.loopback.channel_bandwidth,
                gap=self.loopback.gap,
            )
            self._route_cache[key] = route
            return route
        for ep in (src, dst):
            if ep not in self._graph:
                raise KeyError(f"endpoint {ep!r} not in topology {self.name!r}")
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise KeyError(
                f"no path {src!r} -> {dst!r} in topology {self.name!r}"
            ) from None
        hops = tuple(zip(path[:-1], path[1:]))
        latency = 0.0
        bandwidth = float("inf")
        msg_bandwidth = float("inf")
        gap = 0.0
        for u, v in hops:
            p = self._links[frozenset((u, v))]
            latency += p.latency
            bandwidth = min(bandwidth, p.bandwidth)
            msg_bandwidth = min(msg_bandwidth, p.channel_bandwidth)
            gap = max(gap, p.gap)
        route = Route(
            src=src,
            dst=dst,
            hops=hops,
            latency=latency,
            bandwidth=bandwidth,
            message_bandwidth=msg_bandwidth,
            gap=gap,
        )
        self._route_cache[key] = route
        return route

    def describe(self) -> str:
        """Human-readable inventory of the fabric (for Table I benches)."""
        lines = [f"topology {self.name}: {len(self.endpoints)} endpoints"]
        for key, p in sorted(self._links.items(), key=lambda kv: sorted(kv[0])):
            a, b = sorted(key)
            lines.append(
                f"  {a} <-> {b}: {p.name}, "
                f"{p.bandwidth / 1e9:.0f} GB/s/dir, {p.latency * 1e6:.2f} us"
            )
        return "\n".join(lines)
