"""Topology: a graph of endpoints connected by LogGP links.

Endpoints are string-named devices: CPU sockets (``"cpu0"``), GPUs
(``"gpu3"``), NICs (``"nic0"``), and — at cluster scale — switches and
routers (``"r0.1"``).  The machine models in ``repro.machines`` build one
:class:`TopologySpec` each from the paper's Fig. 2 node diagrams; the
parametric generators here (:func:`dragonfly`, :func:`fat_tree`,
:func:`torus`) build the datacenter fabrics those nodes plug into via
:func:`repro.machines.cluster.make_cluster`.

Path *selection* lives in :mod:`repro.net.routing`; this module resolves
static minimum-latency paths (computed with networkx and cached) and turns
any explicit hop sequence into a costed :class:`Route` via
:meth:`TopologySpec.route_via` — bottleneck fields are computed from the
actual hops of each path, so adaptive (non-minimal) routes report their own
per-path latency/``G``, not the cached minimal pair's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import networkx as nx

from repro.net.loggp import LinkParams

__all__ = [
    "TopologySpec",
    "Route",
    "FabricBlueprint",
    "dragonfly",
    "fat_tree",
    "torus",
]


@dataclass(frozen=True)
class Route:
    """A resolved path: the ordered endpoints and per-hop link parameters."""

    src: str
    dst: str
    hops: tuple[tuple[str, str], ...]  # directed (u, v) pairs
    latency: float  # sum of per-hop latencies
    bandwidth: float  # min per-hop aggregate bandwidth (bottleneck)
    message_bandwidth: float  # min per-hop single-sub-channel bandwidth
    gap: float  # max per-hop gap

    @property
    def nhops(self) -> int:
        return len(self.hops)

    @property
    def G(self) -> float:
        """Per-byte time one message observes (bottleneck sub-channel)."""
        return 1.0 / self.message_bandwidth


@dataclass
class TopologySpec:
    """Declarative description of a node/system fabric.

    Build with :meth:`add_link`; query with :meth:`route`.  Loopback routes
    (``src == dst``) are legal and resolve to a zero-hop route whose
    parameters come from ``loopback`` (an on-device memcpy model).
    """

    name: str
    loopback: LinkParams = field(
        default_factory=lambda: LinkParams(latency=1e-7, bandwidth=200e9, name="local")
    )
    injection: dict[str, LinkParams] = field(default_factory=dict)
    _links: dict[frozenset[str], LinkParams] = field(default_factory=dict)
    _graph: nx.Graph = field(default_factory=nx.Graph)
    _route_cache: dict[tuple[str, str], Route] = field(default_factory=dict)
    _path_cache: dict[tuple[str, str], list[str]] = field(default_factory=dict)

    def add_link(self, a: str, b: str, params: LinkParams) -> None:
        """Connect endpoints ``a`` and ``b`` (undirected, full duplex)."""
        if a == b:
            raise ValueError(f"cannot link endpoint {a!r} to itself")
        key = frozenset((a, b))
        if key in self._links:
            raise ValueError(f"duplicate link {a!r}<->{b!r} in topology {self.name!r}")
        self._links[key] = params
        self._graph.add_edge(a, b, weight=params.latency, params=params)
        self._route_cache.clear()
        self._path_cache.clear()

    def set_injection(self, endpoint: str, params: LinkParams) -> None:
        """Give ``endpoint`` a serialised injection port.

        All messages leaving the endpoint stream through this port at
        ``params.bandwidth`` before fanning out onto per-peer links.  Models
        the copy/DMA engine an endpoint funnels traffic through; omitting it
        means injection is unconstrained.
        """
        self.injection[endpoint] = params

    @property
    def endpoints(self) -> list[str]:
        return sorted(self._graph.nodes)

    @property
    def links(self) -> dict[frozenset[str], LinkParams]:
        return dict(self._links)

    def link_params(self, a: str, b: str) -> LinkParams:
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link {a!r}<->{b!r} in topology {self.name!r}")
        return self._links[key]

    def has_endpoint(self, name: str) -> bool:
        return name in self._graph

    def route(self, src: str, dst: str) -> Route:
        """Resolve the (cached) minimum-latency route ``src -> dst``.

        The cache is sound here because minimal paths are static: the same
        (src, dst) pair always resolves to the same hops, so the cached
        bottleneck fields equal a fresh :meth:`route_via` of that path.
        Policies that pick *different* hops per decision (adaptive routing)
        must cost each chosen path with :meth:`route_via` instead.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            route = Route(
                src=src,
                dst=dst,
                hops=(),
                latency=self.loopback.latency,
                bandwidth=self.loopback.bandwidth,
                message_bandwidth=self.loopback.channel_bandwidth,
                gap=self.loopback.gap,
            )
            self._route_cache[key] = route
            return route
        for ep in (src, dst):
            if ep not in self._graph:
                raise KeyError(f"endpoint {ep!r} not in topology {self.name!r}")
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise KeyError(
                f"no path {src!r} -> {dst!r} in topology {self.name!r}"
            ) from None
        route = self.route_via(path)
        self._route_cache[key] = route
        return route

    def route_via(self, path: Sequence[str]) -> Route:
        """Cost an explicit endpoint path into a :class:`Route`.

        Bottleneck fields (latency sum, min bandwidth, max gap) are computed
        from the hops actually given — never cached — so every routing
        *decision* reports the parameters of its own path.  Every
        consecutive pair must be a topology link.
        """
        if len(path) < 2:
            raise ValueError(f"path needs at least two endpoints, got {list(path)}")
        hops = tuple(zip(path[:-1], path[1:]))
        latency = 0.0
        bandwidth = float("inf")
        msg_bandwidth = float("inf")
        gap = 0.0
        for u, v in hops:
            key = frozenset((u, v))
            if key not in self._links:
                raise KeyError(
                    f"no link {u!r}<->{v!r} in topology {self.name!r} "
                    f"(path {list(path)})"
                )
            p = self._links[key]
            latency += p.latency
            bandwidth = min(bandwidth, p.bandwidth)
            msg_bandwidth = min(msg_bandwidth, p.channel_bandwidth)
            gap = max(gap, p.gap)
        return Route(
            src=path[0],
            dst=path[-1],
            hops=hops,
            latency=latency,
            bandwidth=bandwidth,
            message_bandwidth=msg_bandwidth,
            gap=gap,
        )

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Minimum-latency endpoint sequence ``src -> ... -> dst``.

        Cached per pair (minimal paths are static; adaptive routing calls
        this once per Valiant candidate per decision) and returned as a
        fresh list so callers may concatenate freely.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached)
        for ep in (src, dst):
            if ep not in self._graph:
                raise KeyError(f"endpoint {ep!r} not in topology {self.name!r}")
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise KeyError(
                f"no path {src!r} -> {dst!r} in topology {self.name!r}"
            ) from None
        self._path_cache[key] = path
        return list(path)

    def invalidate_routes(self) -> None:
        """Drop every cached route and path.

        Minimal paths are static, so the caches normally live forever;
        failure-aware policies (:class:`repro.net.routing.FailoverRouting`)
        call this when their dead-element view changes so that nothing
        downstream keeps serving a path computed under a different
        liveness picture.  Recomputation is a pure function of the graph,
        so invalidation never changes any zero-fault result.
        """
        self._route_cache.clear()
        self._path_cache.clear()

    def shortest_path_avoiding(
        self, src: str, dst: str, dead: "frozenset[frozenset[str]] | set"
    ) -> list[str]:
        """Minimum-latency path that uses none of the ``dead`` links.

        ``dead`` is a collection of unordered link keys (frozensets of the
        two endpoints).  Raises ``KeyError`` when removing those links
        partitions ``src`` from ``dst`` — the caller's signal that no
        failover is possible.
        """
        for ep in (src, dst):
            if ep not in self._graph:
                raise KeyError(f"endpoint {ep!r} not in topology {self.name!r}")
        view = nx.restricted_view(
            self._graph, [], [tuple(key) for key in dead]
        )
        try:
            return list(nx.shortest_path(view, src, dst, weight="weight"))
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise KeyError(
                f"no live path {src!r} -> {dst!r} in topology {self.name!r} "
                f"({len(dead)} dead link(s))"
            ) from None

    # -- graph-level summaries (repro topo CLI, FabricBlueprint.describe) ----

    def diameter_hops(self) -> int:
        """Longest shortest path (in hops) between any endpoint pair."""
        return nx.diameter(self._graph)

    def bisection_bandwidth(self) -> float:
        """Bandwidth crossing a balanced min-cut of the fabric (bytes/s).

        Exact for the generated fabrics' sizes: minimum, over all balanced
        bipartitions found by a Kernighan-Lin style sweep, of the summed
        bandwidth of cut links.  For larger graphs this is the standard
        heuristic estimate, not a certificate.
        """
        nodes = sorted(self._graph.nodes)
        if len(nodes) < 2:
            return 0.0
        half_a, half_b = nx.algorithms.community.kernighan_lin_bisection(
            self._graph, partition=None, weight=None, seed=0
        )
        cut = 0.0
        for key, p in self._links.items():
            a, b = tuple(key)
            if (a in half_a) != (b in half_a):
                cut += p.bandwidth
        return cut

    def describe(self) -> str:
        """Human-readable inventory of the fabric (for Table I benches)."""
        lines = [f"topology {self.name}: {len(self.endpoints)} endpoints"]
        for key, p in sorted(self._links.items(), key=lambda kv: sorted(kv[0])):
            a, b = sorted(key)
            lines.append(
                f"  {a} <-> {b}: {p.name}, "
                f"{p.bandwidth / 1e9:.0f} GB/s/dir, {p.latency * 1e6:.2f} us"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parametric datacenter fabric generators
# ---------------------------------------------------------------------------

# Wire parameters for generated fabrics: electrical (intra-group / in-rack)
# vs optical (global / inter-rack) links, in the Slingshot class.
_LOCAL_LINK = LinkParams(latency=3e-7, bandwidth=25e9, gap=5e-8, name="local")
_GLOBAL_LINK = LinkParams(latency=9e-7, bandwidth=25e9, gap=5e-8, name="global")


@dataclass(frozen=True)
class FabricBlueprint:
    """A generated switch/router fabric plus its node attachment plan.

    ``topology`` holds only the routers and inter-router links;
    ``attach_points`` lists the router each successive node's NIC should be
    cabled to (round-robin over router ports), so
    :func:`repro.machines.cluster.make_cluster` can embed N node models
    behind NICs.  ``groups`` maps each router to its locality group (a
    dragonfly group, a fat-tree pod, a torus coordinate) — the unit adaptive
    routing detours around.
    """

    kind: str
    topology: TopologySpec
    attach_points: tuple[str, ...]
    attach_link: LinkParams
    groups: dict[str, int]
    params: dict[str, int] = field(default_factory=dict)

    @property
    def max_nodes(self) -> int:
        return len(self.attach_points)

    def describe(self) -> str:
        t = self.topology
        args = ",".join(f"{k}={v}" for k, v in self.params.items())
        return (
            f"{self.kind}({args}): {len(t.endpoints)} routers, "
            f"{len(t.links)} links, {self.max_nodes} node ports"
        )


def dragonfly(
    groups: int, routers_per_group: int, nodes_per_router: int,
    *,
    local_link: LinkParams = _LOCAL_LINK,
    global_link: LinkParams = _GLOBAL_LINK,
) -> FabricBlueprint:
    """A canonical dragonfly: all-to-all routers within a group, one global
    link between every pair of groups (assigned round-robin to routers).

    Minimal routes between groups cross exactly one global link; adaptive
    (UGAL) routing detours through a third group when that link queues —
    the Slingshot behaviour RAMC measures at scale.
    """
    if groups < 2:
        raise ValueError(f"dragonfly needs >= 2 groups, got {groups}")
    if routers_per_group < 1 or nodes_per_router < 1:
        raise ValueError("routers_per_group and nodes_per_router must be >= 1")
    topo = TopologySpec(name=f"dragonfly-{groups}g{routers_per_group}r")
    names = [
        [f"g{g}r{r}" for r in range(routers_per_group)] for g in range(groups)
    ]
    group_of: dict[str, int] = {}
    for g in range(groups):
        for r, router in enumerate(names[g]):
            group_of[router] = g
        for i in range(routers_per_group):
            for j in range(i + 1, routers_per_group):
                topo.add_link(names[g][i], names[g][j], local_link)
    # One global link per group pair; the hosting router inside each group
    # advances round-robin so global ports spread across routers.
    ports = [0] * groups
    for a in range(groups):
        for b in range(a + 1, groups):
            ra = names[a][ports[a] % routers_per_group]
            rb = names[b][ports[b] % routers_per_group]
            topo.add_link(ra, rb, global_link)
            ports[a] += 1
            ports[b] += 1
    attach = tuple(
        names[g][r]
        for g in range(groups)
        for r in range(routers_per_group)
        for _ in range(nodes_per_router)
    )
    return FabricBlueprint(
        kind="dragonfly",
        topology=topo,
        attach_points=attach,
        attach_link=local_link,
        groups=group_of,
        params={
            "groups": groups,
            "routers_per_group": routers_per_group,
            "nodes_per_router": nodes_per_router,
        },
    )


def fat_tree(
    k: int,
    *,
    edge_link: LinkParams = _LOCAL_LINK,
    core_link: LinkParams = _GLOBAL_LINK,
) -> FabricBlueprint:
    """A two-level folded-Clos ("fat tree") with ``k`` pods.

    Each pod is one edge router serving ``k`` node ports; ``k // 2`` core
    routers each connect to every pod, giving ``k // 2`` disjoint
    pod-to-pod paths — the path diversity adaptive routing exploits.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat_tree k must be even and >= 2, got {k}")
    topo = TopologySpec(name=f"fattree-{k}")
    cores = [f"core{c}" for c in range(k // 2)]
    edges = [f"pod{p}" for p in range(k)]
    group_of: dict[str, int] = {c: -1 for c in cores}
    for p, edge in enumerate(edges):
        group_of[edge] = p
        for core in cores:
            topo.add_link(edge, core, core_link)
    attach = tuple(edge for edge in edges for _ in range(k))
    return FabricBlueprint(
        kind="fat_tree",
        topology=topo,
        attach_points=attach,
        attach_link=edge_link,
        groups=group_of,
        params={"k": k},
    )


def torus(
    dims: Sequence[int],
    *,
    link: LinkParams = _LOCAL_LINK,
    nodes_per_router: int = 1,
) -> FabricBlueprint:
    """A wraparound d-dimensional torus of routers, one node port each
    (``nodes_per_router`` to widen).  Rings of length 2 collapse the two
    wraparound directions into one link."""
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError(f"torus dims must all be >= 2, got {list(dims)}")
    shape = "x".join(str(d) for d in dims)
    topo = TopologySpec(name=f"torus-{shape}")

    def name(coord: tuple[int, ...]) -> str:
        return "t" + "-".join(str(c) for c in coord)

    coords: list[tuple[int, ...]] = [()]
    for d in dims:
        coords = [c + (i,) for c in coords for i in range(d)]
    group_of: dict[str, int] = {}
    for c in coords:
        group_of[name(c)] = c[0]
        for axis, d in enumerate(dims):
            nxt = list(c)
            nxt[axis] = (c[axis] + 1) % d
            nxt = tuple(nxt)
            if nxt == c:
                continue
            key = frozenset((name(c), name(nxt)))
            if key not in topo.links:
                topo.add_link(name(c), name(nxt), link)
    attach = tuple(name(c) for c in coords for _ in range(nodes_per_router))
    return FabricBlueprint(
        kind="torus",
        topology=topo,
        attach_points=attach,
        attach_link=link,
        groups=group_of,
        params={
            **{f"dim{i}": d for i, d in enumerate(dims)},
            "nodes_per_router": nodes_per_router,
        },
    )
