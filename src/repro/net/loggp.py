"""LogGP parameterisation of a communication channel.

The paper grounds its Message Roofline model in LogGP
(Alexandrov et al., SPAA'95):

* ``L`` — network latency, processor independent;
* ``o`` — sender/receiver sequential overhead, processor *dependent*;
* ``g`` — gap: minimum time between consecutive message injections
  (the reciprocal of message rate) — **cannot** be overlapped by sending
  more messages;
* ``G`` — per-byte time (the reciprocal of bandwidth);
* ``P`` — number of processors.

In this reproduction the split of responsibilities is:

* ``L``, ``g`` and ``G`` live on the *links* (:class:`LinkParams`, this
  module + ``repro.net.link``) because they are properties of the wire;
* ``o`` lives on the *runtime profile* (``repro.machines.base.CommCosts``)
  because the paper attributes it to the MPI/NVSHMEM software stack (two
  ops per two-sided message, four per one-sided message, ...).

:class:`LogGPParams` is the *combined* view used by the analytic roofline
model (``repro.roofline``): one latency, one overhead, one gap, one per-byte
time for a (machine, runtime, path) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._compat import renamed_kwargs
from repro.util.validation import check_non_negative, check_positive

__all__ = ["LogGPParams", "LinkParams"]


@dataclass(frozen=True)
class LogGPParams:
    """Combined LogGP parameters for an end-to-end message path.

    Attributes:
        L: one-way network latency (seconds).
        o: software overhead charged per message (seconds) — serial at the
           sender, so it can never be overlapped by sending more messages.
        g: minimum inter-message gap at the injection port (seconds).
        G: per-byte time (seconds/byte); ``1/G`` is peak bandwidth.
        o_sync: software overhead charged once per *synchronization*
            (seconds): the blocking wait's wake-up for two-sided MPI, the
            flush/put-signal/flush completion sequence for one-sided MPI,
            the ``wait_until`` wake for NVSHMEM.  Amortised over the batch —
            the reason msg/sync is the model's key axis.
    """

    L: float
    o: float
    g: float
    G: float
    o_sync: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("L", self.L)
        check_non_negative("o", self.o)
        check_non_negative("g", self.g)
        check_positive("G", self.G)
        check_non_negative("o_sync", self.o_sync)

    @property
    def peak_bandwidth(self) -> float:
        """Peak link bandwidth in bytes/second (= 1/G)."""
        return 1.0 / self.G

    @classmethod
    def from_bandwidth(
        cls, *, latency: float, overhead: float, gap: float, bandwidth: float
    ) -> "LogGPParams":
        """Construct from a bandwidth (bytes/s) instead of per-byte time."""
        check_positive("bandwidth", bandwidth)
        return cls(L=latency, o=overhead, g=gap, G=1.0 / bandwidth)

    def with_overhead(self, o: float) -> "LogGPParams":
        """A copy with a different software overhead (runtime substitution)."""
        return replace(self, o=o)

    def scaled_bandwidth(self, factor: float) -> "LogGPParams":
        """A copy with bandwidth multiplied by ``factor`` (G divided)."""
        check_positive("factor", factor)
        return replace(self, G=self.G / factor)

    # ------------------------------------------------------------------
    # Elementary LogGP timings (used by the roofline model and the tests
    # that pin the link simulator to the analytic form).
    # ------------------------------------------------------------------

    def time_one_message(self, nbytes: float) -> float:
        """End-to-end time of a single isolated message: ``o + L + B*G``."""
        check_non_negative("nbytes", nbytes)
        return self.o + self.L + nbytes * self.G

    @renamed_kwargs(nmsgs="msgs_per_sync")
    def time_pipelined(self, nbytes: float, msgs_per_sync: int) -> float:
        """Time for ``msgs_per_sync`` back-to-back messages of ``nbytes``
        each, followed by one synchronization (the paper's msg/sync batch).

        Consecutive messages are spaced by ``max(o, g, B*G)`` — the sender
        overhead, the injection gap, and the transmission time overlap with
        each other but none can be overlapped away; the last message's
        bytes then cross the wire, the latency ``L`` is paid once at the
        tail (all earlier latencies are hidden under the pipeline), and the
        synchronization overhead is paid once::

            T = o + (n-1)*max(o, g, B*G) + B*G + L + o_sync
        """
        check_non_negative("nbytes", nbytes)
        if msgs_per_sync < 1:
            raise ValueError(f"msgs_per_sync must be >= 1, got {msgs_per_sync}")
        spacing = max(self.o, self.g, nbytes * self.G)
        return (
            self.o
            + (msgs_per_sync - 1) * spacing
            + nbytes * self.G
            + self.L
            + self.o_sync
        )

    @renamed_kwargs(nmsgs="msgs_per_sync")
    def bandwidth_pipelined(self, nbytes: float, msgs_per_sync: int) -> float:
        """Achieved bandwidth (bytes/s) of the msg/sync batch above."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be > 0, got {nbytes}")
        return nbytes * msgs_per_sync / self.time_pipelined(nbytes, msgs_per_sync)


@dataclass(frozen=True)
class LinkParams:
    """Wire-level parameters of a single physical link (no software ``o``).

    Attributes:
        latency: one-way propagation + switch latency (seconds).
        bandwidth: aggregate per-direction bandwidth (bytes/second).
        gap: minimum spacing between message injections on one channel
            (seconds).  Defaults to 0 (bandwidth-limited only).
        channels: number of independent sub-channels.  A single message
            streams over one sub-channel at ``bandwidth / channels``; the
            aggregate is only reachable with ``channels`` concurrent
            messages.  This models NVLink port groups (the A100's twelve
            ports in three groups) and is what gives the paper's Fig. 10
            split-message speedup.
        name: label for traces and reports ("NVLINK3", "IF CPU-CPU", ...).
    """

    latency: float
    bandwidth: float
    gap: float = 0.0
    channels: int = 1
    name: str = "link"
    # Remote atomics have far lower rate limits than plain stores (they are
    # cacheline-granule read-modify-writes at the far agent); ``atomic_gap``
    # is the per-atomic injection spacing.  None = same as ``gap``.  A large
    # value here is what throttles cross-socket CAS traffic on Summit's
    # X-Bus (the paper's Fig. 9 stall beyond one island).
    atomic_gap: float | None = None

    def __post_init__(self) -> None:
        check_non_negative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("gap", self.gap)
        if self.atomic_gap is not None:
            check_non_negative("atomic_gap", self.atomic_gap)
        if not isinstance(self.channels, int) or self.channels < 1:
            raise ValueError(f"channels must be a positive int, got {self.channels!r}")

    @property
    def effective_atomic_gap(self) -> float:
        return self.gap if self.atomic_gap is None else self.atomic_gap

    @property
    def G(self) -> float:
        """Per-byte time of ONE sub-channel (seconds/byte) — the rate a
        single message observes."""
        return self.channels / self.bandwidth

    @property
    def channel_bandwidth(self) -> float:
        """Bandwidth of one sub-channel (bytes/second)."""
        return self.bandwidth / self.channels
