"""The simulated physical link.

A :class:`Link` is full duplex: each direction is an independent
:class:`_Channel` with its own injection port.  Injection is serialised —
a channel accepts the next message only ``max(gap, nbytes * G)`` after the
previous one started, which is exactly the LogGP statement that the gap
``g`` *cannot* be overlapped by issuing more messages.  Contention between
concurrent senders sharing a link therefore appears as queueing delay at the
injection port.

Delivery time for a message accepted at ``start`` is
``start + latency + nbytes * G`` (cut-through; bytes stream behind the head).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.loggp import LinkParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Link", "Channel"]


class Channel:
    """One direction of a link: ``channels`` parallel serialised sub-ports.

    A message claims the sub-channel that frees up first.  With one
    sub-channel this is plain FIFO serialisation; with ``k`` sub-channels up
    to ``k`` messages stream concurrently, each at ``bandwidth / k`` — the
    NVLink port-group behaviour the paper exploits in Fig. 10.
    """

    __slots__ = (
        "sim",
        "params",
        "_next_free",
        "bytes_carried",
        "messages_carried",
        "wait_hist",
        "util_timeline",
        "faults",
        "hard",
        "down_stall_seconds",
        "stall_recorder",
    )

    def __init__(self, sim: "Simulator", params: LinkParams):
        self.sim = sim
        self.params = params
        self._next_free: list[float] = [0.0] * params.channels
        self.bytes_carried: float = 0.0
        self.messages_carried: int = 0
        # Optional observability hook (repro.obs.metrics.Histogram): when
        # set, every reservation records its queueing delay — the time the
        # head of the message waited for a sub-channel to free up.
        self.wait_hist = None
        # Optional utilization timeline (repro.obs.metrics.Timeline): each
        # reservation adds its occupancy seconds to the bin it starts in.
        self.util_timeline = None
        # Optional fault parameters (repro.faults.LinkFaults).  None — the
        # overwhelmingly common case — keeps reserve() on the exact
        # arithmetic it has always used; a fault plan only ever sets this
        # for links whose parameters are not clean.
        self.faults = None
        # Hard (fail-stop) outage windows resolved from element faults
        # (sorted, merged ``[fail_at, recover_at)`` tuples).  Unlike the
        # transient ``faults.down`` windows the head does NOT stall here:
        # a message whose head reaches a hard-down channel is dropped by
        # the fabric (the element is dead, not busy).
        self.hard: tuple | None = None
        self.down_stall_seconds: float = 0.0
        # Callable fed each stall duration (the fault injector's
        # record_down_stall), so scope/metrics totals see outage time.
        self.stall_recorder = None

    def reserve(
        self, nbytes: float, earliest: float, *, atomic: bool = False
    ) -> tuple[float, float]:
        """Claim one sub-channel for one message.

        Args:
            nbytes: message size in bytes.
            earliest: the earliest time the head of the message can be at
                this port (sender ready time, or upstream hop time).
            atomic: remote-atomic traffic uses the (usually much larger)
                ``atomic_gap`` spacing.

        Returns:
            ``(start, head_out)``: when injection begins, and when the head
            of the message leaves the far end of this channel
            (``start + latency``).  The tail arrives ``nbytes * G`` later
            (sub-channel per-byte time); multi-hop routes take the max
            per-byte time across hops.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        # Earliest-free sub-channel; ties resolve to the lowest index so the
        # schedule is deterministic.
        idx = min(range(len(self._next_free)), key=self._next_free.__getitem__)
        start = max(earliest, self._next_free[idx])
        per_byte = self.params.G
        faults = self.faults
        if faults is not None:
            # Transient outages: the head stalls at the port until the
            # window closes (windows are sorted, so one forward pass
            # handles back-to-back outages).
            for a, b in faults.down:
                if a <= start < b:
                    self.down_stall_seconds += b - start
                    if self.stall_recorder is not None:
                        self.stall_recorder(b - start)
                    start = b
            per_byte *= faults.degrade
        gap = self.params.effective_atomic_gap if atomic else self.params.gap
        occupancy = max(gap, nbytes * per_byte)
        self._next_free[idx] = start + occupancy
        self.bytes_carried += nbytes
        self.messages_carried += 1
        if self.wait_hist is not None:
            self.wait_hist.observe(start - earliest)
        if self.util_timeline is not None:
            self.util_timeline.observe(start, occupancy)
        return start, start + self.params.latency

    def hard_down_at(self, t: float) -> bool:
        """Is this channel inside a hard (element-failure) outage at ``t``?"""
        if self.hard is None:
            return False
        for a, b in self.hard:
            if a <= t < b:
                return True
            if t < a:
                break
        return False

    @property
    def effective_G(self) -> float:
        """Per-byte time including any permanent degradation factor."""
        if self.faults is not None:
            return self.params.G * self.faults.degrade
        return self.params.G

    @property
    def utilization_until(self) -> float:
        """Time at which some sub-channel becomes free (tests/introspection)."""
        return min(self._next_free)


class Link:
    """A bidirectional connection between two topology endpoints."""

    __slots__ = ("sim", "a", "b", "params", "_fwd", "_rev")

    def __init__(self, sim: "Simulator", a: str, b: str, params: LinkParams):
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        self.sim = sim
        self.a = a
        self.b = b
        self.params = params
        self._fwd = Channel(sim, params)
        self._rev = Channel(sim, params)

    def channel(self, src: str, dst: str) -> Channel:
        """The directional channel carrying traffic ``src -> dst``."""
        if (src, dst) == (self.a, self.b):
            return self._fwd
        if (src, dst) == (self.b, self.a):
            return self._rev
        raise KeyError(f"link {self.a}<->{self.b} does not connect {src}->{dst}")

    def attach_wait_hist(self, hist) -> None:
        """Record both directions' reservation queueing delays into ``hist``."""
        self._fwd.wait_hist = hist
        self._rev.wait_hist = hist

    def attach_util_timeline(self, timeline) -> None:
        """Accumulate both directions' occupancy into one utilization
        timeline (:class:`repro.obs.metrics.Timeline`)."""
        self._fwd.util_timeline = timeline
        self._rev.util_timeline = timeline

    def set_faults(self, faults, stall_recorder=None) -> None:
        """Install :class:`repro.faults.LinkFaults` on both directions
        (``None`` restores the pristine fast path)."""
        self._fwd.faults = faults
        self._rev.faults = faults
        self._fwd.stall_recorder = stall_recorder
        self._rev.stall_recorder = stall_recorder

    def set_hard(self, windows) -> None:
        """Install merged hard-outage windows on both directions (a dead
        element kills the whole link; ``None`` clears)."""
        self._fwd.hard = windows
        self._rev.hard = windows

    @property
    def hard(self):
        """The link's hard-outage windows (both directions share them)."""
        return self._fwd.hard

    @property
    def name(self) -> str:
        """Canonical (sorted) link name used in fault draws and metrics."""
        lo, hi = sorted((self.a, self.b))
        return f"{lo}<->{hi}"

    def stats(self) -> dict[str, float]:
        """Cumulative per-direction traffic counters."""
        return {
            f"{self.a}->{self.b}.bytes": self._fwd.bytes_carried,
            f"{self.a}->{self.b}.messages": self._fwd.messages_carried,
            f"{self.b}->{self.a}.bytes": self._rev.bytes_carried,
            f"{self.b}->{self.a}.messages": self._rev.messages_carried,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.a}<->{self.b} {self.params.name}>"
