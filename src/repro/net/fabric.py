"""The live network: topology + simulator = message delivery with contention.

:class:`Fabric` instantiates one :class:`~repro.net.link.Link` per topology
edge and exposes a single operation, :meth:`Fabric.transfer`, which moves
``nbytes`` from one endpoint to another and returns the simulation event that
fires on delivery (tail arrival at the destination).

Multi-hop routes use cut-through (wormhole) forwarding: the head of the
message reserves each hop's injection port in order; per-hop latencies
accumulate; the tail arrives one bottleneck-``G`` transmission time after the
head.  Contention on any shared hop delays the reservation and is therefore
visible end to end — this is what produces the Summit 42-CPU SpTRSV
contention collapse and the cross-socket hashtable penalty in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultError
from repro.net.congestion import CongestionConfig, CongestionControl
from repro.net.link import Channel, Link
from repro.net.routing import get_routing
from repro.net.topology import Route, TopologySpec
from repro.sim.event import Event
from repro.sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector
    from repro.net.routing import RoutingPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

__all__ = ["Fabric", "Delivery"]

# Queueing-wait histogram edges (seconds): the zero bucket counts
# contention-free reservations; the rest are decades up to 10 ms.
_WAIT_EDGES = (0.0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
# Bytes-over-time bin width (seconds) for the bandwidth timeline.
_TIMELINE_BIN = 1e-4
# Attempt-count histogram edges: bucket k counts transfers delivered on
# attempt <= edge (1 = first try; the retry cap defaults to 8 retries).
_ATTEMPT_EDGES = (1.0, 2.0, 3.0, 5.0, 9.0)


class Delivery:
    """Result of a transfer: arrival time plus the completion event.

    ``attempts`` counts fabric traversals (1 = delivered first try);
    ``dropped`` is True when the retry budget was exhausted — the event
    then carries a :class:`repro.faults.FaultError` instead of a value.
    """

    __slots__ = ("event", "start", "arrival", "nbytes", "route", "attempts", "dropped")

    def __init__(
        self,
        event: Event,
        start: float,
        arrival: float,
        nbytes: float,
        route: Route,
        attempts: int = 1,
        dropped: bool = False,
    ):
        self.event = event
        self.start = start
        self.arrival = arrival
        self.nbytes = nbytes
        self.route = route
        self.attempts = attempts
        self.dropped = dropped


class Fabric:
    """Message transport over a :class:`TopologySpec`."""

    def __init__(
        self,
        sim: "Simulator",
        topology: TopologySpec,
        tracer: Tracer | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
        faults: "FaultInjector | None" = None,
        routing: "str | RoutingPolicy | None" = None,
        congestion: CongestionConfig | None = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracer = tracer if tracer is not None else NullTracer()
        self.routing = get_routing(routing)
        self.cc = CongestionControl(congestion) if congestion is not None else None
        self._links: dict[frozenset[str], Link] = {
            key: Link(sim, *sorted(key), params=params)
            for key, params in topology.links.items()
        }
        self._injection: dict[str, Channel] = {
            ep: Channel(sim, params) for ep, params in topology.injection.items()
        }
        self._loopback_next_free: dict[str, float] = {}
        self.total_messages = 0
        self.total_bytes = 0.0
        self.faults = faults
        # Link key -> merged hard-outage windows (filled by
        # _install_faults when the plan carries element faults).
        self.hard_links: dict[frozenset[str], tuple] = {}
        if faults is not None:
            self._install_faults(faults)
        self.metrics = metrics
        self._m_messages = self._m_bytes = self._m_timeline = None
        if metrics is not None:
            if faults is not None:
                faults.attempts_hist = metrics.histogram(
                    "faults.attempts", _ATTEMPT_EDGES
                )
                metrics.register_collector(faults.metrics_snapshot)
            if self.routing is not None and hasattr(self.routing, "metrics_snapshot"):
                # Failure-aware policies export routing.failover.* gauges.
                metrics.register_collector(self.routing.metrics_snapshot)
            self._m_messages = metrics.counter("net.fabric.messages")
            self._m_bytes = metrics.counter("net.fabric.bytes")
            self._m_timeline = metrics.timeline("net.bytes_timeline", _TIMELINE_BIN)
            inj_hist = metrics.histogram("net.injection_wait_seconds", _WAIT_EDGES)
            for channel in self._injection.values():
                channel.wait_hist = inj_hist
            link_hist = metrics.histogram("net.link_wait_seconds", _WAIT_EDGES)
            for link in self._links.values():
                link.attach_wait_hist(link_hist)
            # Per-link byte/message totals are already counted by the
            # channels; export them at snapshot time (sum-merged across
            # fabrics feeding the same registry).
            metrics.register_collector(
                lambda: {f"net.link.{k}": float(v) for k, v in self.link_stats().items()}
            )
            if self.cc is not None:
                self.cc.m_marks = metrics.counter("net.cc.marks")
                self.cc.m_backoffs = metrics.counter("net.cc.backoffs")
                # Per-link utilization timelines: each reservation adds its
                # occupancy (seconds) to the bin it starts in, so a bin total
                # divided by _TIMELINE_BIN is that link's utilization there.
                for link in self._links.values():
                    link.attach_util_timeline(
                        metrics.timeline(f"net.link.util.{link.name}", _TIMELINE_BIN)
                    )

    def link(self, a: str, b: str) -> Link:
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link {a!r}<->{b!r} in fabric")
        return self._links[key]

    def _install_faults(self, injector: "FaultInjector") -> None:
        """Attach per-link fault parameters; links the plan leaves clean
        keep ``faults=None`` and stay on the pristine reserve() path."""
        from repro.faults.hard import resolve_hard_faults

        plan = injector.plan
        for link in self._links.values():
            lf = plan.for_link(link.a, link.b)
            if not lf.clean:
                link.set_faults(lf, stall_recorder=injector.record_down_stall)
                if self.tracer.enabled:
                    for a, b in lf.down:
                        # Rendered as a span on the fabric track by the
                        # Chrome exporter.
                        self.tracer.emit(
                            self.sim.now,
                            "net.link.down",
                            -1,
                            link=link.name,
                            start=a,
                            arrival=b,
                        )
        # Hard (fail-stop) element faults: a dead router/node/NIC takes
        # every resolved link down atomically for its windows.
        self.hard_links = resolve_hard_faults(plan, self.topology)
        for key, windows in self.hard_links.items():
            link = self._links[key]
            link.set_hard(windows)
            if self.tracer.enabled:
                for a, b in windows:
                    self.tracer.emit(
                        self.sim.now,
                        "net.link.hard_down",
                        -1,
                        link=link.name,
                        start=a,
                        arrival=b,
                    )

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        *,
        payload: object = None,
        earliest: float | None = None,
        atomic: bool = False,
    ) -> Delivery:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Args:
            src, dst: endpoint names in the topology.
            nbytes: message size (0 is legal: a pure control message still
                pays latency and gap).
            payload: opaque object delivered as the completion event's value.
            earliest: injection may not begin before this time (defaults to
                the current simulated time).

        Returns:
            A :class:`Delivery` whose ``event`` fires with ``payload`` at the
            tail-arrival time.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        now = self.sim.now if earliest is None else max(earliest, self.sim.now)
        if self.routing is None:
            route = self.topology.route(src, dst)
        else:
            # One routing decision per transfer: adaptive policies may pick
            # a different (freshly costed) path for the same pair over time.
            route = self.routing.route(self, src, dst, nbytes, now)
        if route.nhops == 0:
            # Loopback: serialised on the device's local copy engine.
            # Never traverses a link, so fault plans do not apply.
            free = self._loopback_next_free.get(src, 0.0)
            start = max(now, free)
            occupancy = max(route.gap, nbytes * route.G)
            self._loopback_next_free[src] = start + occupancy
            arrival = start + route.latency + nbytes * route.G
        elif self.faults is not None:
            return self._transfer_faulty(
                src, dst, nbytes, route, now, payload=payload, atomic=atomic
            )
        else:
            cc = self.cc
            t = now
            if cc is not None:
                # A throttled source stretches its injection: the backoff
                # delay is paid before the message touches any port.
                t = now + cc.injection_delay(src, nbytes * route.G)
            max_wait = 0.0
            start = None
            inj = self._injection.get(src)
            if inj is not None:
                # The endpoint's copy/DMA engine serialises all outgoing
                # traffic; concurrent messages to different peers stagger here.
                inj_start, inj_head_out = inj.reserve(nbytes, t, atomic=atomic)
                if cc is not None and inj_start - t > max_wait:
                    max_wait = inj_start - t
                start = inj_start
                t = inj_head_out
            for u, v in route.hops:
                channel = self._links[frozenset((u, v))].channel(u, v)
                hop_start, head_out = channel.reserve(nbytes, t, atomic=atomic)
                if cc is not None and hop_start - t > max_wait:
                    max_wait = hop_start - t
                if start is None:
                    start = hop_start
                # The head of the message reaches the next hop's port after
                # this hop's latency; injection there cannot begin earlier.
                t = head_out
            assert start is not None
            # Tail: one bottleneck transmission time behind the head.
            arrival = t + nbytes * route.G
            if cc is not None:
                # Worst per-hop queueing wait is the ECN signal: past the
                # threshold the source's rate takes a multiplicative hit.
                cc.observe(src, max_wait)
        event = self.sim.event()
        delay = arrival - self.sim.now
        if delay < 0:
            raise AssertionError(
                f"fabric computed arrival in the past: {arrival} < {self.sim.now}"
            )
        event.succeed(payload, delay=delay)
        self.total_messages += 1
        self.total_bytes += nbytes
        if self._m_bytes is not None:
            self._m_messages.inc()
            self._m_bytes.inc(nbytes)
            self._m_timeline.observe(arrival, nbytes)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                "net.transfer",
                -1,
                src=src,
                dst=dst,
                nbytes=nbytes,
                start=start,
                arrival=arrival,
                nhops=route.nhops,
            )
        return Delivery(event, start, arrival, nbytes, route)

    def _transfer_faulty(
        self,
        src: str,
        dst: str,
        nbytes: float,
        route: Route,
        now: float,
        *,
        payload: object,
        atomic: bool,
    ) -> Delivery:
        """Multi-hop transfer under an active fault plan.

        Each attempt reserves the injection port and every hop exactly like
        the pristine path (re-paying the full LogGP cost of the retry).  A
        hop whose link samples "lost" consumes upstream capacity but stops
        the traversal; the sender detects the loss ``timeout * detect_scale
        * backoff**attempt`` after that attempt started injecting and
        re-enters the fabric then.  Exhausting the budget raises
        :class:`FaultError` (``mode="abort"``: library-internal recovery,
        MPI-style) or fails the completion event (``mode="surface"``: the
        error reaches the program at flush/wait/quiet time).

        Loss and jitter draws are keyed on ``(seed, link, transfer id,
        attempt)``: two runs with the same plan replay identically, and a
        higher loss rate can only turn deliveries into drops, never the
        reverse — degradation curves are monotone by construction.
        """
        inj = self.faults
        policy = inj.plan.retransmit
        sem = inj.semantics
        tid = self.total_messages  # stable per-transfer id for fault draws
        max_attempts = policy.max_retries + 1
        cc = self.cc
        routing = self.routing
        # Failure-aware policies (FailoverRouting) ask for a fresh routing
        # decision per retry attempt and are told about every detected
        # drop; static policies keep the fixed-route retry loop.
        reroutes = routing is not None and getattr(routing, "reroutes", False)
        notify = routing if routing is not None and hasattr(routing, "on_drop") else None
        t_ready = now
        if cc is not None:
            t_ready = now + cc.injection_delay(src, nbytes * route.G)
        max_wait = 0.0
        first_start: float | None = None
        attempt = 0
        while True:
            t = t_ready
            start: float | None = None
            inj_ch = self._injection.get(src)
            if inj_ch is not None:
                inj_start, inj_head_out = inj_ch.reserve(nbytes, t, atomic=atomic)
                if cc is not None and inj_start - t > max_wait:
                    max_wait = inj_start - t
                start = inj_start
                t = inj_head_out
            tail_G = route.G
            lost_link: str | None = None
            lost_key: frozenset[str] | None = None
            for u, v in route.hops:
                key = frozenset((u, v))
                link = self._links[key]
                channel = link.channel(u, v)
                hop_start, head_out = channel.reserve(nbytes, t, atomic=atomic)
                if cc is not None and hop_start - t > max_wait:
                    max_wait = hop_start - t
                if start is None:
                    start = hop_start
                if channel.hard_down_at(hop_start):
                    # The element behind this link is dead: the head
                    # reaches a port that no longer exists.  Upstream
                    # capacity was spent; nothing propagates further.
                    lost_link = link.name
                    lost_key = key
                    inj.record_hard_drop(link.name)
                    break
                lf = channel.faults
                if lf is not None:
                    head_out += inj.jitter(lf, link.name, tid, attempt)
                    tail_G = max(tail_G, channel.effective_G)
                    if inj.lost(lf, link.name, tid, attempt):
                        # Dropped on this hop: upstream capacity was spent,
                        # downstream hops never see the message.
                        lost_link = link.name
                        lost_key = key
                        inj.record_drop(link.name)
                        break
                t = head_out
            assert start is not None
            if first_start is None:
                first_start = start
            if lost_link is None:
                arrival = t + nbytes * tail_G
                attempts = attempt + 1
                if cc is not None:
                    cc.observe(src, max_wait)
                inj.record_delivery(attempts)
                return self._complete(
                    src, dst, nbytes, route, first_start, arrival,
                    payload=payload, attempts=attempts,
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now,
                    "net.fault.drop",
                    -1,
                    src=src,
                    dst=dst,
                    link=lost_link,
                    attempt=attempt,
                    nbytes=nbytes,
                )
            # Sender-side detection, measured from when this attempt began
            # injecting; one-sided runtimes additionally re-synchronise
            # their window state before re-issuing.
            detect = start + policy.timeout * sem.detect_scale * policy.backoff**attempt
            if notify is not None:
                # Feed the failure detector: this is the transfer-attempt
                # history FailoverRouting's timeout-based detection reads.
                notify.on_drop(self, lost_key, detect)
            if attempt + 1 >= max_attempts:
                inj.record_exhausted()
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now,
                        "net.fault.exhausted",
                        -1,
                        src=src,
                        dst=dst,
                        link=lost_link,
                        attempts=attempt + 1,
                        nbytes=nbytes,
                    )
                err = FaultError(
                    f"transfer {src}->{dst} ({nbytes:g} B) lost on {lost_link} "
                    f"after {attempt + 1} attempts"
                )
                if sem.mode == "abort":
                    self._account(src, dst, nbytes, route, first_start, detect)
                    raise err
                delivery = self._complete(
                    src, dst, nbytes, route, first_start, detect,
                    payload=payload, attempts=attempt + 1, error=err,
                )
                return delivery
            inj.record_retransmit()
            t_ready = detect
            if sem.resync_penalty:
                t_ready += 2.0 * route.latency
            if reroutes:
                # Ask the policy again with its updated dead-set view: the
                # retry may take a different (live) path.  A partitioned
                # pair raises FaultError here — surface it exactly like
                # retry-budget exhaustion.
                try:
                    route = routing.route(self, src, dst, nbytes, t_ready)
                except FaultError as err:
                    inj.record_exhausted()
                    if sem.mode == "abort":
                        self._account(
                            src, dst, nbytes, route, first_start, t_ready
                        )
                        raise
                    return self._complete(
                        src, dst, nbytes, route, first_start, t_ready,
                        payload=payload, attempts=attempt + 1, error=err,
                    )
            attempt += 1

    def _complete(
        self,
        src: str,
        dst: str,
        nbytes: float,
        route: Route,
        start: float,
        arrival: float,
        *,
        payload: object,
        attempts: int,
        error: Exception | None = None,
    ) -> Delivery:
        """Build the completion event + bookkeeping for a faulty-path
        transfer (the pristine path keeps its original inline code)."""
        event = self.sim.event()
        delay = arrival - self.sim.now
        if delay < 0:
            raise AssertionError(
                f"fabric computed arrival in the past: {arrival} < {self.sim.now}"
            )
        if error is None:
            event.succeed(payload, delay=delay)
        else:
            event.fail(error, delay=delay)
        self._account(src, dst, nbytes, route, start, arrival, attempts=attempts)
        return Delivery(
            event, start, arrival, nbytes, route,
            attempts=attempts, dropped=error is not None,
        )

    def _account(
        self,
        src: str,
        dst: str,
        nbytes: float,
        route: Route,
        start: float,
        arrival: float,
        *,
        attempts: int = 1,
    ) -> None:
        self.total_messages += 1
        self.total_bytes += nbytes
        if self._m_bytes is not None:
            self._m_messages.inc()
            self._m_bytes.inc(nbytes)
            self._m_timeline.observe(arrival, nbytes)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                "net.transfer",
                -1,
                src=src,
                dst=dst,
                nbytes=nbytes,
                start=start,
                arrival=arrival,
                nhops=route.nhops,
                attempts=attempts,
            )

    def link_stats(self) -> dict[str, float]:
        """Traffic counters for every link direction (tests + reports)."""
        out: dict[str, float] = {}
        for link in self._links.values():
            out.update(link.stats())
        return out
