"""The live network: topology + simulator = message delivery with contention.

:class:`Fabric` instantiates one :class:`~repro.net.link.Link` per topology
edge and exposes a single operation, :meth:`Fabric.transfer`, which moves
``nbytes`` from one endpoint to another and returns the simulation event that
fires on delivery (tail arrival at the destination).

Multi-hop routes use cut-through (wormhole) forwarding: the head of the
message reserves each hop's injection port in order; per-hop latencies
accumulate; the tail arrives one bottleneck-``G`` transmission time after the
head.  Contention on any shared hop delays the reservation and is therefore
visible end to end — this is what produces the Summit 42-CPU SpTRSV
contention collapse and the cross-socket hashtable penalty in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.link import Channel, Link
from repro.net.topology import Route, TopologySpec
from repro.sim.event import Event
from repro.sim.trace import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

__all__ = ["Fabric", "Delivery"]

# Queueing-wait histogram edges (seconds): the zero bucket counts
# contention-free reservations; the rest are decades up to 10 ms.
_WAIT_EDGES = (0.0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
# Bytes-over-time bin width (seconds) for the bandwidth timeline.
_TIMELINE_BIN = 1e-4


class Delivery:
    """Result of a transfer: arrival time plus the completion event."""

    __slots__ = ("event", "start", "arrival", "nbytes", "route")

    def __init__(
        self, event: Event, start: float, arrival: float, nbytes: float, route: Route
    ):
        self.event = event
        self.start = start
        self.arrival = arrival
        self.nbytes = nbytes
        self.route = route


class Fabric:
    """Message transport over a :class:`TopologySpec`."""

    def __init__(
        self,
        sim: "Simulator",
        topology: TopologySpec,
        tracer: Tracer | None = None,
        *,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracer = tracer if tracer is not None else NullTracer()
        self._links: dict[frozenset[str], Link] = {
            key: Link(sim, *sorted(key), params=params)
            for key, params in topology.links.items()
        }
        self._injection: dict[str, Channel] = {
            ep: Channel(sim, params) for ep, params in topology.injection.items()
        }
        self._loopback_next_free: dict[str, float] = {}
        self.total_messages = 0
        self.total_bytes = 0.0
        self.metrics = metrics
        self._m_messages = self._m_bytes = self._m_timeline = None
        if metrics is not None:
            self._m_messages = metrics.counter("net.fabric.messages")
            self._m_bytes = metrics.counter("net.fabric.bytes")
            self._m_timeline = metrics.timeline("net.bytes_timeline", _TIMELINE_BIN)
            inj_hist = metrics.histogram("net.injection_wait_seconds", _WAIT_EDGES)
            for channel in self._injection.values():
                channel.wait_hist = inj_hist
            link_hist = metrics.histogram("net.link_wait_seconds", _WAIT_EDGES)
            for link in self._links.values():
                link.attach_wait_hist(link_hist)
            # Per-link byte/message totals are already counted by the
            # channels; export them at snapshot time (sum-merged across
            # fabrics feeding the same registry).
            metrics.register_collector(
                lambda: {f"net.link.{k}": float(v) for k, v in self.link_stats().items()}
            )

    def link(self, a: str, b: str) -> Link:
        key = frozenset((a, b))
        if key not in self._links:
            raise KeyError(f"no link {a!r}<->{b!r} in fabric")
        return self._links[key]

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        *,
        payload: object = None,
        earliest: float | None = None,
        atomic: bool = False,
    ) -> Delivery:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Args:
            src, dst: endpoint names in the topology.
            nbytes: message size (0 is legal: a pure control message still
                pays latency and gap).
            payload: opaque object delivered as the completion event's value.
            earliest: injection may not begin before this time (defaults to
                the current simulated time).

        Returns:
            A :class:`Delivery` whose ``event`` fires with ``payload`` at the
            tail-arrival time.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        now = self.sim.now if earliest is None else max(earliest, self.sim.now)
        route = self.topology.route(src, dst)
        if route.nhops == 0:
            # Loopback: serialised on the device's local copy engine.
            free = self._loopback_next_free.get(src, 0.0)
            start = max(now, free)
            occupancy = max(route.gap, nbytes * route.G)
            self._loopback_next_free[src] = start + occupancy
            arrival = start + route.latency + nbytes * route.G
        else:
            t = now
            start = None
            inj = self._injection.get(src)
            if inj is not None:
                # The endpoint's copy/DMA engine serialises all outgoing
                # traffic; concurrent messages to different peers stagger here.
                inj_start, inj_head_out = inj.reserve(nbytes, t, atomic=atomic)
                start = inj_start
                t = inj_head_out
            for u, v in route.hops:
                channel = self._links[frozenset((u, v))].channel(u, v)
                hop_start, head_out = channel.reserve(nbytes, t, atomic=atomic)
                if start is None:
                    start = hop_start
                # The head of the message reaches the next hop's port after
                # this hop's latency; injection there cannot begin earlier.
                t = head_out
            assert start is not None
            # Tail: one bottleneck transmission time behind the head.
            arrival = t + nbytes * route.G
        event = self.sim.event()
        delay = arrival - self.sim.now
        if delay < 0:
            raise AssertionError(
                f"fabric computed arrival in the past: {arrival} < {self.sim.now}"
            )
        event.succeed(payload, delay=delay)
        self.total_messages += 1
        self.total_bytes += nbytes
        if self._m_bytes is not None:
            self._m_messages.inc()
            self._m_bytes.inc(nbytes)
            self._m_timeline.observe(arrival, nbytes)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now,
                "net.transfer",
                -1,
                src=src,
                dst=dst,
                nbytes=nbytes,
                start=start,
                arrival=arrival,
                nhops=route.nhops,
            )
        return Delivery(event, start, arrival, nbytes, route)

    def link_stats(self) -> dict[str, float]:
        """Traffic counters for every link direction (tests + reports)."""
        out: dict[str, float] = {}
        for link in self._links.values():
            out.update(link.stats())
        return out
