"""ECN-style congestion control at the injection edge.

The fabric's links already serialise contending messages (queueing at the
injection ports); what a loaded datacenter fabric adds is *endpoint
reaction*: flows whose packets queue past a threshold get marked, and
marked sources back off their injection rate so the shared links drain.

The model here is deliberately small and deterministic:

* **Marking** — a transfer is marked when any hop's reservation had to wait
  longer than ``ecn_threshold`` behind earlier traffic (the per-link
  occupancy window is the queue; waiting past the threshold is the ECN
  signal).
* **Backoff** — each source endpoint holds an injection rate in
  ``[min_rate, 1]``.  A marked transfer multiplies the source's rate by
  ``decrease`` (bounded multiplicative decrease); an unmarked transfer adds
  ``recover`` back (additive increase).  A source at rate ``r`` pays an
  extra ``(1/r - 1) * serialisation`` delay before its next injection —
  rate 0.5 means half injection bandwidth.

Everything is a pure function of the simulation state, so congested runs
replay bit-identically; with no :class:`CongestionConfig` installed the
fabric never touches this module and stays byte-identical to the goldens.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CongestionConfig", "CongestionControl"]


@dataclass(frozen=True)
class CongestionConfig:
    """Knobs for the ECN/backoff loop (see module docstring).

    Attributes:
        ecn_threshold: per-hop queueing wait (seconds) beyond which a
            transfer is marked.
        decrease: multiplicative rate decrease applied to a marked source.
        recover: additive rate recovery per unmarked transfer.
        min_rate: rate floor — backoff is bounded, sources never stall.
    """

    ecn_threshold: float = 2e-6
    decrease: float = 0.5
    recover: float = 0.05
    min_rate: float = 0.125

    def __post_init__(self) -> None:
        if self.ecn_threshold < 0:
            raise ValueError(f"ecn_threshold must be >= 0, got {self.ecn_threshold}")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {self.decrease}")
        if self.recover < 0:
            raise ValueError(f"recover must be >= 0, got {self.recover}")
        if not 0.0 < self.min_rate <= 1.0:
            raise ValueError(f"min_rate must be in (0, 1], got {self.min_rate}")


class CongestionControl:
    """Per-fabric congestion state: one injection rate per source endpoint."""

    __slots__ = ("config", "_rate", "marks", "backoffs", "m_marks", "m_backoffs")

    def __init__(self, config: CongestionConfig):
        self.config = config
        self._rate: dict[str, float] = {}
        self.marks = 0
        self.backoffs = 0
        # Optional obs counters, attached by the fabric at wiring time.
        self.m_marks = None
        self.m_backoffs = None

    def rate(self, src: str) -> float:
        return self._rate.get(src, 1.0)

    def injection_delay(self, src: str, serialization: float) -> float:
        """Extra delay the throttled source pays before this injection.

        ``serialization`` is the transfer's bottleneck occupancy
        (``nbytes * G``); a source at rate ``r`` stretches it by ``1/r``.
        """
        r = self._rate.get(src, 1.0)
        if r >= 1.0 or serialization <= 0.0:
            return 0.0
        self.backoffs += 1
        if self.m_backoffs is not None:
            self.m_backoffs.inc()
        return (1.0 / r - 1.0) * serialization

    def observe(self, src: str, max_wait: float) -> bool:
        """Feed one transfer's worst per-hop queueing wait; returns whether
        it was marked (and updates the source's rate either way)."""
        cfg = self.config
        marked = max_wait > cfg.ecn_threshold
        r = self._rate.get(src, 1.0)
        if marked:
            self.marks += 1
            if self.m_marks is not None:
                self.m_marks.inc()
            self._rate[src] = max(cfg.min_rate, r * cfg.decrease)
        elif r < 1.0:
            self._rate[src] = min(1.0, r + cfg.recover)
        return marked

    def stats(self) -> dict[str, float]:
        """Cumulative mark/backoff counts plus the current per-source rates."""
        out: dict[str, float] = {
            "cc.marks": float(self.marks),
            "cc.backoffs": float(self.backoffs),
        }
        for src, r in sorted(self._rate.items()):
            out[f"cc.rate.{src}"] = r
        return out
