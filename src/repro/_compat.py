"""Keyword-compatibility shims for renamed parameters.

The public surface standardises on ``nbytes`` for message sizes and
``msgs_per_sync`` for the paper's messages-per-synchronisation axis
(historically spelled ``size``/``msg_bytes`` and ``n_msgs``/``count``/
``nmsgs`` in various corners).  :func:`renamed_kwargs` keeps the old
keywords working through one deprecation cycle: the legacy name is
remapped and a :class:`DeprecationWarning` is emitted **once per call
site** (keyed on the caller's file and line), so a hot loop does not
flood stderr but every distinct offending line gets told exactly once.

See ``docs/API.md`` for the deprecation policy and the migration table.
"""

from __future__ import annotations

import functools
import sys
import warnings
from collections.abc import Callable
from typing import Any, TypeVar

__all__ = ["deprecated", "renamed_kwargs"]

F = TypeVar("F", bound=Callable[..., Any])

# Call sites already warned: (qualname, old keyword, caller file, line).
_WARNED: set[tuple[str, str, str, int]] = set()


def _reset_warned() -> None:
    """Forget warned call sites (test helper)."""
    _WARNED.clear()


def deprecated(replacement: str) -> Callable[[F], F]:
    """Mark a whole entry point deprecated, warning once per call site.

    ``@deprecated("repro.collectives.run_collective")`` keeps the old
    function fully working while steering callers to ``replacement`` —
    same once-per-call-site dedup as :func:`renamed_kwargs`, so loops
    over a legacy entry point warn exactly once per offending line.
    """

    def decorate(func: F) -> F:
        qualname = func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            frame = sys._getframe(1)
            site = (qualname, "<call>", frame.f_code.co_filename, frame.f_lineno)
            if site not in _WARNED:
                _WARNED.add(site)
                warnings.warn(
                    f"{qualname}() is deprecated; use {replacement}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def renamed_kwargs(**old_to_new: str) -> Callable[[F], F]:
    """Accept legacy keyword names, remapping them with a deprecation.

    ``@renamed_kwargs(size="nbytes")`` makes ``f(size=64)`` behave as
    ``f(nbytes=64)`` while warning once per call site.  Passing both the
    old and the new spelling is an error (``TypeError``), not a silent
    pick.
    """

    def decorate(func: F) -> F:
        qualname = func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in old_to_new.items():
                if old not in kwargs:
                    continue
                if new in kwargs:
                    raise TypeError(
                        f"{qualname}() got both {old!r} (deprecated) and "
                        f"its replacement {new!r}"
                    )
                kwargs[new] = kwargs.pop(old)
                frame = sys._getframe(1)
                site = (qualname, old, frame.f_code.co_filename, frame.f_lineno)
                if site not in _WARNED:
                    _WARNED.add(site)
                    warnings.warn(
                        f"{qualname}(): keyword {old!r} is deprecated, "
                        f"use {new!r}",
                        DeprecationWarning,
                        stacklevel=2,
                    )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
