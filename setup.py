"""Setup shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (which pip falls
back to) perform the editable install instead.  Configuration lives in
pyproject.toml.
"""

from setuptools import setup

setup()
